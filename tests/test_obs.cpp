// Observability layer unit tests (DESIGN.md §6): tracer thread-safety and
// bounded memory, histogram quantile correctness against a sorted
// reference, the zero-overhead-when-disabled contract, the Chrome-trace
// JSON golden structure (one complete event per instrumented phase per
// step per rank), BenchReport schema stability, and the StepProfiler
// reset/zero-duration coherence fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <map>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "obs/bench_report.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/step_profiler.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/distributed_solver.hpp"

namespace {

using namespace swlb;
using namespace swlb::obs;
using runtime::Comm;
using runtime::DistributedSolver;
using runtime::HaloMode;
using runtime::World;
using runtime::WorldConfig;

// ---- minimal Chrome-trace JSON reader ----------------------------------
// The writer emits flat one-line objects inside "traceEvents"; this reader
// understands exactly that subset (strings, numbers, flat objects) — enough
// to verify the golden structure without a JSON library.

struct JsonEvent {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

struct JsonTrace {
  std::vector<JsonEvent> events;
  bool hasDisplayTimeUnit = false;
};

JsonTrace parseChromeTrace(const std::string& json) {
  JsonTrace out;
  out.hasDisplayTimeUnit =
      json.find("\"displayTimeUnit\"") != std::string::npos;
  const std::size_t arr = json.find("\"traceEvents\"");
  EXPECT_NE(arr, std::string::npos);
  std::size_t i = json.find('[', arr);
  EXPECT_NE(i, std::string::npos);
  ++i;
  while (i < json.size()) {
    while (i < json.size() && json[i] != '{' && json[i] != ']') ++i;
    if (i >= json.size() || json[i] == ']') break;
    JsonEvent ev;
    ++i;  // past '{'
    while (i < json.size() && json[i] != '}') {
      while (i < json.size() &&
             (std::isspace(static_cast<unsigned char>(json[i])) ||
              json[i] == ','))
        ++i;
      if (json[i] == '}') break;
      EXPECT_EQ(json[i], '"') << "key must be a string at offset " << i;
      std::size_t k0 = ++i;
      while (i < json.size() && json[i] != '"') ++i;
      const std::string key = json.substr(k0, i - k0);
      ++i;  // closing quote
      EXPECT_EQ(json[i], ':');
      ++i;
      if (json[i] == '"') {
        std::string val;
        ++i;
        while (i < json.size() && json[i] != '"') {
          if (json[i] == '\\' && i + 1 < json.size()) ++i;
          val += json[i++];
        }
        ++i;
        ev.strings[key] = val;
      } else if (json[i] == '{') {
        // Nested object (metadata "args"): skip it, balanced.
        int depth = 0;
        do {
          if (json[i] == '{') ++depth;
          if (json[i] == '}') --depth;
          ++i;
        } while (i < json.size() && depth > 0);
      } else {
        std::size_t v0 = i;
        while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
        ev.numbers[key] = std::stod(json.substr(v0, i - v0));
      }
    }
    ++i;  // past '}'
    out.events.push_back(std::move(ev));
  }
  return out;
}

// ---- Tracer ------------------------------------------------------------

TEST(Tracer, RecordsCompleteScopesInOrder) {
  Tracer tracer;
  MetricsRegistry reg;
  {
    ScopedBind bind(&tracer, &reg, /*rank=*/3);
    { TraceScope s("alpha"); }
    { TraceScope s("beta"); }
  }
  ASSERT_EQ(tracer.eventCount(), 2u);
  const auto events = tracer.events();
  EXPECT_STREQ(events[0].name, "alpha");
  EXPECT_STREQ(events[1].name, "beta");
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_LE(events[0].beginUs, events[1].beginUs);
  EXPECT_GE(events[0].durUs, 0.0);
  // Scopes feed the same-named histograms too.
  EXPECT_EQ(reg.histogramSummary("alpha").count, 1u);
  EXPECT_EQ(reg.histogramSummary("beta").count, 1u);
}

TEST(Tracer, ThreadSafeUnderFourRankWorld) {
  constexpr int kRanks = 4;
  constexpr int kScopes = 500;
  Tracer tracer;
  MetricsRegistry reg;
  WorldConfig cfg;
  cfg.tracer = &tracer;
  cfg.metrics = &reg;
  World world(kRanks, cfg);
  world.run([&](Comm& comm) {
    for (int s = 0; s < kScopes; ++s) {
      TraceScope scope("work");
      (void)comm;
    }
  });
  EXPECT_EQ(tracer.eventCount(),
            static_cast<std::size_t>(kRanks) * kScopes);
  EXPECT_EQ(tracer.droppedEvents(), 0u);
  EXPECT_EQ(tracer.threadCount(), static_cast<std::size_t>(kRanks));
  // Every rank contributed exactly kScopes events.
  std::map<int, int> perRank;
  for (const TraceEvent& e : tracer.events()) ++perRank[e.rank];
  ASSERT_EQ(perRank.size(), static_cast<std::size_t>(kRanks));
  for (const auto& [rank, n] : perRank) {
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, kRanks);
    EXPECT_EQ(n, kScopes);
  }
  EXPECT_EQ(reg.histogramSummary("work").count,
            static_cast<std::uint64_t>(kRanks) * kScopes);
}

TEST(Tracer, BoundedMemoryDropsBeyondCap) {
  Tracer tracer(/*maxEventsPerThread=*/100);
  ScopedBind bind(&tracer, nullptr);
  for (int i = 0; i < 250; ++i) TraceScope scope("e");
  EXPECT_EQ(tracer.eventCount(), 100u);
  EXPECT_EQ(tracer.droppedEvents(), 150u);
  tracer.clear();
  EXPECT_EQ(tracer.eventCount(), 0u);
  { TraceScope scope("after-clear"); }
  EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST(Tracer, DisabledTracerRecordsNothingButMetricsStillFlow) {
  Tracer tracer;
  tracer.setEnabled(false);
  MetricsRegistry reg;
  ScopedBind bind(&tracer, &reg);
  { TraceScope scope("quiet"); }
  obs::count("c");
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_EQ(reg.histogramSummary("quiet").count, 1u);
  EXPECT_EQ(reg.counterValue("c"), 1u);
}

TEST(Tracer, ScopedBindNestsAndRestores) {
  Tracer outer, inner;
  {
    ScopedBind a(&outer, nullptr, 1);
    {
      ScopedBind b(&inner, nullptr, 2);
      TraceScope scope("in");
    }
    TraceScope scope("out");
  }
  ASSERT_EQ(inner.eventCount(), 1u);
  ASSERT_EQ(outer.eventCount(), 1u);
  EXPECT_STREQ(inner.events()[0].name, "in");
  EXPECT_EQ(inner.events()[0].rank, 2);
  EXPECT_STREQ(outer.events()[0].name, "out");
  EXPECT_EQ(outer.events()[0].rank, 1);
  EXPECT_EQ(obs::current(), nullptr);
}

// ---- zero overhead when disabled ---------------------------------------

TEST(Obs, ZeroInstrumentationEffectWhenUnbound) {
  ASSERT_EQ(obs::current(), nullptr);
  Tracer tracer;
  MetricsRegistry reg;
  // A solver run with observability constructed but NOT bound must leave
  // both completely untouched.
  Solver<D2Q9> solver(Grid(8, 8, 1), CollisionConfig{},
                      Periodicity{true, true, false});
  solver.initUniform(1.0, {0.01, 0, 0});
  solver.run(3);
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_TRUE(reg.empty());
  // And the no-op helpers really are no-ops.
  obs::count("x");
  obs::observe("y", 1.0);
  obs::gaugeSet("z", 2.0);
  EXPECT_TRUE(reg.empty());
}

// ---- Histogram ---------------------------------------------------------

TEST(Histogram, QuantilesMatchSortedReference) {
  // Shuffled 1..1000: nearest-rank quantiles have closed-form answers.
  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 1.0);
  std::mt19937 rng(42);
  std::shuffle(values.begin(), values.end(), rng);

  Histogram h;
  for (double v : values) h.observe(v);

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.total(), 1000.0 * 1001.0 / 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Nearest rank: ceil(q*n) of the sorted sequence 1..1000 is q*1000.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 500.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 950.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 999.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);

  // Cross-check against an explicit sorted-reference implementation on a
  // second, irregular data set.
  std::vector<double> ref = {3.5, -1.0, 7.25, 0.0, 2.0, 9.0, 4.0};
  Histogram h2;
  for (double v : ref) h2.observe(v);
  std::sort(ref.begin(), ref.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    const auto n = static_cast<double>(ref.size());
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * n)));
    EXPECT_DOUBLE_EQ(h2.quantile(q), ref[rank - 1]) << "q=" << q;
  }
}

TEST(Histogram, EmptyAndBoundedSampleStore) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  // Exact stats keep counting past the sample cap; quantiles come from a
  // bounded reservoir over the WHOLE stream (not just the first cap
  // observations), so late values can — and for a long stream almost
  // surely do — appear in the sample.
  Histogram h(/*sampleCap=*/4);
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_GT(h.quantile(1.0), 4.0);  // reservoir replaced some of 1..4

  // sampleCap == 0 keeps exact stats and empty quantiles without dividing
  // by the cap.
  Histogram none(/*sampleCap=*/0);
  none.observe(7.0);
  none.observe(9.0);
  EXPECT_EQ(none.count(), 2u);
  EXPECT_DOUBLE_EQ(none.mean(), 8.0);
  EXPECT_DOUBLE_EQ(none.quantile(0.5), 0.0);  // nothing sampled
}

TEST(Histogram, ReservoirTracksSteadyStateNotWarmup) {
  // A long run: 2 % warmup at 100 ms/step, then steady state at 1 ms.
  // First-cap sampling would fill the whole store during warmup and
  // report p50 = p95 = 100 forever; the reservoir keeps the sample
  // uniform over the stream, so the quantiles must track the steady
  // phase (98 % of observations are 1.0).
  Histogram h(/*sampleCap=*/512);
  const int warmup = 1000, steady = 49000;
  for (int i = 0; i < warmup; ++i) h.observe(100.0);
  for (int i = 0; i < steady; ++i) h.observe(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 1.0);
  // Exact fields are unaffected by sampling.
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(warmup + steady));
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Deterministic: a second histogram fed the same stream agrees exactly.
  Histogram h2(/*sampleCap=*/512);
  for (int i = 0; i < warmup; ++i) h2.observe(100.0);
  for (int i = 0; i < steady; ++i) h2.observe(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), h2.quantile(0.95));
}

TEST(Histogram, SummaryIsSnapshotConsistentUnderConcurrency) {
  // Every observation adds (count += 1, total += 1.0) atomically under the
  // histogram lock; summary() must snapshot all fields under ONE lock, so
  // total == count exactly in every summary a reader ever sees.  Run under
  // TSan in CI; the torn-read bug also fails this test without TSan.
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) h.observe(1.0);
  });
  for (int i = 0; i < 2000; ++i) {
    const Histogram::Summary s = h.summary();
    EXPECT_DOUBLE_EQ(s.total, static_cast<double>(s.count));
    if (s.count > 0) {
      EXPECT_DOUBLE_EQ(s.mean, 1.0);
      EXPECT_DOUBLE_EQ(s.min, 1.0);
      EXPECT_DOUBLE_EQ(s.max, 1.0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(MetricsRegistry, NamedAccessAndSnapshots) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counterValue("missing"), 0u);
  reg.counter("a").add(3);
  reg.counter("a").add(2);
  reg.gauge("g").setMax(5);
  reg.gauge("g").setMax(2);  // lower value must not win
  reg.histogram("h").observe(1.5);
  EXPECT_EQ(reg.counterValue("a"), 5u);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("g"), 5.0);
  EXPECT_EQ(reg.histogramSummary("h").count, 1u);
  const auto counters = reg.counterSnapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.at("a"), 5u);
  // Reads never created entries.
  EXPECT_EQ(reg.counterSnapshot().count("missing"), 0u);
}

TEST(MetricsRegistry, ScopedViewPrefixesEveryName) {
  MetricsRegistry reg;
  auto tenant = reg.scoped("tenant.3");
  tenant.counter("steps").add(7);
  tenant.gauge("resident").set(1);
  tenant.histogram("quantum_s").observe(0.25);
  // The view writes into THIS registry under the prefixed names.
  EXPECT_EQ(reg.counterValue("tenant.3.steps"), 7u);
  EXPECT_DOUBLE_EQ(reg.gaugeValue("tenant.3.resident"), 1.0);
  EXPECT_EQ(reg.histogramSummary("tenant.3.quantum_s").count, 1u);
  // Reads through the view see the same entries.
  EXPECT_EQ(tenant.counterValue("steps"), 7u);
  EXPECT_DOUBLE_EQ(tenant.gaugeValue("resident"), 1.0);
  EXPECT_EQ(tenant.histogramSummary("quantum_s").count, 1u);
  // Scopes nest, and the handle stays usable as a value.
  auto nested = reg.scoped("serve").scoped("tenant").scoped("acme");
  EXPECT_EQ(nested.prefix(), "serve.tenant.acme");
  nested.counter("jobs").add(1);
  EXPECT_EQ(reg.counterValue("serve.tenant.acme.jobs"), 1u);
  // Same underlying counter whether addressed scoped or flat.
  reg.counter("tenant.3.steps").add(1);
  EXPECT_EQ(tenant.counterValue("steps"), 8u);
  // An empty prefix is the identity view.
  EXPECT_EQ(reg.scoped("").counterValue("tenant.3.steps"), 8u);
}

// ---- Chrome-trace golden structure -------------------------------------

TEST(ChromeTrace, GoldenStructureFourRankOverlapRun) {
  constexpr int kRanks = 4;
  constexpr std::uint64_t kSteps = 5;
  Tracer tracer;
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.tracer = &tracer;
  wcfg.metrics = &reg;
  World world(kRanks, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {16, 16, 1};
    cfg.procGrid = {2, 2, 1};
    cfg.periodic = {true, true, false};
    cfg.mode = HaloMode::Overlap;
    DistributedSolver<D2Q9> solver(comm, cfg);
    solver.initUniform(1.0, {0.01, 0, 0});
    solver.run(kSteps);
  });

  std::ostringstream os;
  tracer.writeChromeTrace(os);
  const JsonTrace trace = parseChromeTrace(os.str());
  EXPECT_TRUE(trace.hasDisplayTimeUnit);

  // One thread_name metadata row per rank.
  int metaRows = 0;
  std::map<int, std::map<std::string, int>> perRankPhase;
  for (const JsonEvent& e : trace.events) {
    ASSERT_TRUE(e.strings.count("ph"));
    if (e.strings.at("ph") == "M") {
      ++metaRows;
      EXPECT_EQ(e.strings.at("name"), "thread_name");
      continue;
    }
    EXPECT_EQ(e.strings.at("ph"), "X");
    ASSERT_TRUE(e.numbers.count("ts"));
    ASSERT_TRUE(e.numbers.count("dur"));
    ASSERT_TRUE(e.numbers.count("tid"));
    EXPECT_GE(e.numbers.at("dur"), 0.0);
    perRankPhase[static_cast<int>(e.numbers.at("tid"))]
                [e.strings.at("name")]++;
  }
  EXPECT_EQ(metaRows, kRanks);
  ASSERT_EQ(perRankPhase.size(), static_cast<std::size_t>(kRanks));

  // Golden phase contract: one complete event per instrumented phase per
  // step per rank; 2x2 periodic torus => 8 halo neighbours per rank.
  for (const auto& [rank, phases] : perRankPhase) {
    SCOPED_TRACE("rank " + std::to_string(rank));
    for (const char* phase :
         {"step", "z_wrap", "halo.post", "compute.interior", "halo.finish",
          "compute.frontier"}) {
      ASSERT_TRUE(phases.count(phase)) << phase;
      EXPECT_EQ(phases.at(phase), static_cast<int>(kSteps)) << phase;
    }
    EXPECT_EQ(phases.at("halo.pack"), static_cast<int>(kSteps));
    EXPECT_EQ(phases.at("halo.wait"), static_cast<int>(8 * kSteps));
    EXPECT_EQ(phases.at("halo.unpack"), static_cast<int>(8 * kSteps));
    // Sequential-mode phases must be absent from an Overlap run.
    EXPECT_EQ(phases.count("halo.exchange"), 0u);
  }
}

TEST(ChromeTrace, SequentialModeEmitsExchangePhase) {
  Tracer tracer;
  WorldConfig wcfg;
  wcfg.tracer = &tracer;
  World world(2, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {8, 8, 1};
    cfg.procGrid = {2, 1, 1};
    cfg.periodic = {true, true, false};
    cfg.mode = HaloMode::Sequential;
    DistributedSolver<D2Q9> solver(comm, cfg);
    solver.initUniform(1.0, {0, 0, 0});
    solver.run(2);
  });
  std::map<std::string, int> phases;
  for (const TraceEvent& e : tracer.events()) ++phases[e.name];
  EXPECT_EQ(phases["halo.exchange"], 2 * 2);  // 2 ranks x 2 steps
  EXPECT_EQ(phases["compute.interior"], 2 * 2);
  EXPECT_EQ(phases.count("halo.post"), 0u);
  EXPECT_EQ(phases.count("compute.frontier"), 0u);
}

// ---- BenchReport schema ------------------------------------------------

TEST(BenchReport, EmitsStableSchema) {
  MetricsRegistry reg;
  reg.counter("comm.bytes_sent").add(1024);
  reg.gauge("sw.ldm_high_water").set(4096);
  reg.histogram("step").observe(0.5);
  reg.histogram("step").observe(1.5);

  BenchReport report("bench_demo");
  BenchReport::Result& r = report.add("case-a");
  r.set("mlups", 12.5);
  r.setText("size", "16x16x1");
  r.addMetrics(reg);

  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"swlb-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"bench_demo\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"case-a\""), std::string::npos);
  EXPECT_NE(json.find("\"mlups\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"size\":\"16x16x1\""), std::string::npos);
  EXPECT_NE(json.find("\"comm.bytes_sent\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"step\""), std::string::npos);
  for (const char* key : {"\"count\"", "\"total_s\"", "\"mean_s\"",
                          "\"min_s\"", "\"max_s\"", "\"p50_s\"", "\"p95_s\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // Byte-stable: a second write of the same report is identical.
  std::ostringstream os2;
  report.write(os2);
  EXPECT_EQ(json, os2.str());
}

// ---- StepProfiler ------------------------------------------------------

TEST(StepProfiler, ZeroDurationStepsReportNoRate) {
  StepProfiler p(1000.0);
  // Steps faster than the clock's resolution record 0 s; mlups() must say
  // "no rate" instead of dividing by a zero total.
  p.record(0.0);
  p.record(0.0);
  EXPECT_EQ(p.steps(), 2u);
  EXPECT_DOUBLE_EQ(p.totalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.mlups(), 0.0);
  EXPECT_DOUBLE_EQ(p.gflops(100.0), 0.0);
  EXPECT_DOUBLE_EQ(p.minSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.maxSeconds(), 0.0);
}

TEST(StepProfiler, ResetRestoresMinMaxCoherence) {
  StepProfiler p(1e6);
  p.record(0.5);
  p.record(2.0);
  EXPECT_DOUBLE_EQ(p.minSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(p.maxSeconds(), 2.0);
  p.reset();
  // After reset with nothing recorded, every stat reads zero.
  EXPECT_EQ(p.steps(), 0u);
  EXPECT_DOUBLE_EQ(p.minSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.maxSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.meanSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(p.mlups(), 0.0);
  // New records must not inherit pre-reset extrema.
  p.record(1.0);
  EXPECT_DOUBLE_EQ(p.minSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(p.maxSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(p.mlups(), 1.0);  // 1e6 cells / 1 s = 1 MLUPS
}

TEST(StepProfiler, RejectsNonPositiveCells) {
  EXPECT_THROW(StepProfiler(0.0), Error);
  EXPECT_THROW(StepProfiler(-1.0), Error);
}

}  // namespace
