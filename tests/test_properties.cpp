// Property-based sweeps: physical invariants that must hold across the
// whole parameter grid of (omega, kernel variant, lattice).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <random>
#include <tuple>

#include "core/precision.hpp"
#include "core/solver.hpp"

namespace swlb {
namespace {

// ---------------------------------------------------------- conservation

using SweepParam = std::tuple<double, KernelVariant>;

class ConservationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConservationSweep, MassAndMomentumExactOnPeriodicBox) {
  const auto [omega, variant] = GetParam();
  CollisionConfig cfg;
  cfg.omega = omega;
  Solver<D3Q19> solver(Grid(10, 8, 6), cfg, Periodicity{true, true, true});
  solver.setVariant(variant);
  solver.finalizeMask();
  std::mt19937 rng(1234);
  std::uniform_real_distribution<Real> dist(-0.03, 0.03);
  // Random-ish smooth initial field (deterministic across variants).
  solver.initField([&](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.01 * std::sin(0.7 * x + 1.3 * y + 0.4 * z);
    u = {0.02 * std::sin(0.5 * y), 0.02 * std::cos(0.3 * z),
         0.01 * std::sin(0.9 * x)};
    (void)dist;
    (void)rng;
  });
  const Real m0 = solver.totalMass();
  const Vec3 p0 = solver.totalMomentum();
  solver.run(15);
  EXPECT_NEAR(solver.totalMass(), m0, 1e-11 * m0);
  const Vec3 p1 = solver.totalMomentum();
  EXPECT_NEAR(p1.x, p0.x, 1e-12);
  EXPECT_NEAR(p1.y, p0.y, 1e-12);
  EXPECT_NEAR(p1.z, p0.z, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    OmegaByVariant, ConservationSweep,
    ::testing::Combine(::testing::Values(0.6, 1.0, 1.5, 1.9),
                       ::testing::Values(KernelVariant::Fused,
                                         KernelVariant::Generic,
                                         KernelVariant::TwoStep,
                                         KernelVariant::Push,
                                         KernelVariant::Simd,
                                         KernelVariant::Esoteric)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const double omega = std::get<0>(info.param);
      const KernelVariant variant = std::get<1>(info.param);
      // 15 steps leaves the esoteric solver at an odd phase, so this also
      // exercises the rotated-layout moment accessors.
      std::string v(kernel_variant_name(variant));
      v[0] = static_cast<char>(std::toupper(v[0]));
      return v + "_omega" + std::to_string(static_cast<int>(omega * 10));
    });

// ------------------------------------------- in-place streaming identity

// Randomized fixed-seed sweep: the esoteric in-place kernel must track the
// fused two-lattice reference bit-for-bit at f64 — including X extents that
// are not a multiple of any vector width, random solid/moving-wall masks,
// and both single and double steps (odd phases read through the rotated
// layout).  Reduced storage must track its own two-lattice run as well.
template <class S>
void esotericMatchesFused(int nx, uint32_t seed, int steps) {
  SCOPED_TRACE("nx=" + std::to_string(nx) + " seed=" + std::to_string(seed) +
               " steps=" + std::to_string(steps));
  CollisionConfig cfg;
  cfg.omega = 1.6;
  const Grid g(nx, 6, 4);
  const Periodicity per{true, true, true};
  Solver<D3Q19, S> ref(g, cfg, per);
  Solver<D3Q19, S> eso(g, cfg, per);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cell(0, g.nx * g.ny * g.nz - 1);
  const auto wall = ref.materials().addMovingWall({0.03, 0, 0});
  (void)eso.materials().addMovingWall({0.03, 0, 0});
  for (int k = 0; k < 6; ++k) {  // sparse random obstacles
    const int c = cell(rng);
    const int x = c % g.nx, y = (c / g.nx) % g.ny, z = c / (g.nx * g.ny);
    const uint8_t m = (k % 2 == 0) ? MaterialTable::kSolid : wall;
    ref.mask()(x, y, z) = m;
    eso.mask()(x, y, z) = m;
  }
  eso.setVariant(KernelVariant::Esoteric);
  ref.finalizeMask();
  eso.finalizeMask();
  auto init = [&](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.02 * std::sin(0.9 * x + 0.7 * y + 0.5 * z + 0.1 * seed);
    u = {0.02 * std::cos(0.4 * y), 0.015 * std::sin(0.6 * z),
         0.01 * std::cos(0.8 * x)};
  };
  ref.initField(init);
  eso.initField(init);
  for (int s = 0; s < steps; ++s) {
    ref.step();
    eso.step();
  }
  long long bad = 0;
  for (int z = 0; z < g.nz && bad == 0; ++z)
    for (int y = 0; y < g.ny && bad == 0; ++y)
      for (int x = 0; x < g.nx && bad == 0; ++x) {
        const CellClass cls = ref.materials()[ref.mask()(x, y, z)].cls;
        if (cls == CellClass::Solid || cls == CellClass::MovingWall) continue;
        for (int i = 0; i < D3Q19::Q; ++i)
          if (ref.population(i, x, y, z) != eso.population(i, x, y, z)) {
            ++bad;
            ADD_FAILURE() << "mismatch at i=" << i << " (" << x << "," << y
                          << "," << z << ")";
            break;
          }
      }
  EXPECT_EQ(bad, 0);
}

TEST(InPlaceStreaming, EsotericBitIdenticalAcrossExtentsAndMasks) {
  uint32_t seed = 9001;
  for (int nx : {5, 7, 9, 11, 13})
    for (int steps : {1, 2}) esotericMatchesFused<double>(nx, seed++, steps);
}

TEST(InPlaceStreaming, EsotericBitIdenticalReducedStorage) {
  esotericMatchesFused<float>(7, 42, 2);
  esotericMatchesFused<float>(11, 43, 1);
  esotericMatchesFused<f16>(9, 44, 2);
}

// --------------------------------------------------------------- symmetry

TEST(Symmetry, MirrorSymmetricStateStaysMirrorSymmetric) {
  // Initial condition and geometry symmetric under y -> ny-1-y with
  // u_y -> -u_y: the evolution must preserve the symmetry exactly.
  const int nx = 12, ny = 10;
  CollisionConfig cfg;
  cfg.omega = 1.4;
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  // Symmetric obstacle pair.
  solver.paint({{5, 2, 0}, {7, 3, 1}}, MaterialTable::kSolid);
  solver.paint({{5, ny - 3, 0}, {7, ny - 2, 1}}, MaterialTable::kSolid);
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0 + 0.005 * std::cos(0.5 * x);
    const Real yc = y - (ny - 1) / 2.0;
    u = {0.02 * std::cos(0.4 * x), 0.015 * yc / ny, 0};  // u_y odd in y
  });
  solver.run(40);

  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const int ym = ny - 1 - y;
      Real rhoA, rhoB;
      Vec3 uA, uB;
      cell_macroscopic<D2Q9>(solver.f(), x, y, 0, cfg, rhoA, uA);
      cell_macroscopic<D2Q9>(solver.f(), x, ym, 0, cfg, rhoB, uB);
      ASSERT_NEAR(rhoA, rhoB, 1e-13);
      ASSERT_NEAR(uA.x, uB.x, 1e-13);
      ASSERT_NEAR(uA.y, -uB.y, 1e-13);
    }
}

TEST(Symmetry, QuarterRotationEquivariance2D) {
  // Rotating the initial state and geometry by 90 degrees must rotate the
  // solution: run two solvers related by (x,y) -> (y, nx-1-x).
  const int n = 10;
  CollisionConfig cfg;
  cfg.omega = 1.2;

  auto makeSolver = [&](bool rotated) {
    Solver<D2Q9> s(Grid(n, n, 1), cfg, Periodicity{true, true, true});
    s.finalizeMask();
    s.initField([&, rotated](int x, int y, int, Real& rho, Vec3& u) {
      int ox = x, oy = y;
      if (rotated) {
        // Inverse of the +90-degree rotation R(ox, oy) = (n-1-oy, ox).
        ox = y;
        oy = n - 1 - x;
      }
      rho = 1.0 + 0.004 * std::sin(0.6 * ox + 0.2 * oy);
      const Vec3 u0{0.02 * std::sin(0.5 * oy), 0.01 * std::cos(0.8 * ox), 0};
      u = rotated ? Vec3{-u0.y, u0.x, 0} : u0;
    });
    return s;
  };

  Solver<D2Q9> a = makeSolver(false);
  Solver<D2Q9> b = makeSolver(true);
  a.run(30);
  b.run(30);

  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      // Cell (x, y) in A maps to (n-1-y, x) in B.
      const Vec3 uA = a.velocity(x, y, 0);
      const Vec3 uB = b.velocity(n - 1 - y, x, 0);
      ASSERT_NEAR(a.density(x, y, 0), b.density(n - 1 - y, x, 0), 1e-13);
      ASSERT_NEAR(uB.x, -uA.y, 1e-13);
      ASSERT_NEAR(uB.y, uA.x, 1e-13);
    }
}

TEST(Symmetry, TimeReversalOfStreamingOnly) {
  // Pure streaming is exactly reversible: stream with velocities c_i, then
  // swap opposite populations, stream again, swap back => original state.
  using D = D3Q19;
  Grid g(6, 6, 6);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  const Periodicity per{true, true, true};
  fill_halo_mask(mask, per, MaterialTable::kSolid);

  PopulationField f0(g, D::Q), f1(g, D::Q), f2(g, D::Q);
  std::mt19937 rng(9);
  std::uniform_real_distribution<Real> dist(0.01, 1.0);
  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < 6; ++z)
      for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 6; ++x) f0(q, x, y, z) = dist(rng);

  apply_periodic(f0, per);
  stream_only<D>(f0, f1, mask, mats, g.interior());
  // Reverse: swap opposite pairs.
  auto reverse = [&](PopulationField& f) {
    for (int q = 1; q < D::Q; q += 2)
      for (int z = 0; z < 6; ++z)
        for (int y = 0; y < 6; ++y)
          for (int x = 0; x < 6; ++x) std::swap(f(q, x, y, z), f(q + 1, x, y, z));
  };
  reverse(f1);
  apply_periodic(f1, per);
  stream_only<D>(f1, f2, mask, mats, g.interior());
  reverse(f2);

  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < 6; ++z)
      for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 6; ++x)
          ASSERT_EQ(f2(q, x, y, z), f0(q, x, y, z));
}

// ------------------------------------------------------------- stability

class StabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(StabilitySweep, LidCavityStaysFiniteAcrossOmega) {
  const double omega = GetParam();
  const int n = 10;
  CollisionConfig cfg;
  cfg.omega = omega;
  Solver<D3Q19> solver(Grid(n, n, n), cfg);
  const auto lid = solver.materials().addMovingWall({0.05, 0, 0});
  solver.paint({{0, 0, n - 1}, {n, n, n}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(200);
  const Real m = solver.totalMass();
  EXPECT_TRUE(std::isfinite(m));
  for (int i = 0; i < n; i += 3) {
    const Vec3 u = solver.velocity(i, n / 2, n / 2);
    EXPECT_TRUE(std::isfinite(u.x) && std::isfinite(u.y) && std::isfinite(u.z));
    EXPECT_LT(std::abs(u.x), 1.0);  // sub-lattice-speed
  }
}

INSTANTIATE_TEST_SUITE_P(OmegaGrid, StabilitySweep,
                         ::testing::Values(0.55, 0.8, 1.0, 1.3, 1.6, 1.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "omega" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace swlb
