// Group checkpoint/restart and gathered output for distributed runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <sstream>

#include "core/solver.hpp"
#include "runtime/parallel_io.hpp"

namespace swlb::runtime {
namespace {

namespace fs = std::filesystem;

std::string tmpPrefix(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

void removeGroup(const std::string& prefix, int ranks) {
  std::remove(group_manifest_path(prefix).c_str());
  for (int r = 0; r < ranks; ++r)
    std::remove(group_checkpoint_path(prefix, r).c_str());
}

DistributedSolver<D2Q9>::Config tgvConfig(int n) {
  DistributedSolver<D2Q9>::Config cfg;
  cfg.global = {n, n, 1};
  cfg.collision.omega = 1.3;
  cfg.periodic = {true, true, true};
  cfg.procGrid = {2, 2, 1};
  return cfg;
}

void initTgv(DistributedSolver<D2Q9>& solver, int n) {
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {-0.02 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5))),
         0.02 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5))), 0};
  });
}

TEST(GroupCheckpoint, RestartContinuesBitwiseAcrossWorlds) {
  const int n = 24, total = 60, atStep = 24;
  const std::string prefix = tmpPrefix("swlb_group_a");

  // Uninterrupted reference run.
  PopulationField reference;
  {
    World world(4);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9> solver(c, tgvConfig(n));
      initTgv(solver, n);
      solver.run(total);
      PopulationField g = solver.gatherPopulations(0);
      if (c.rank() == 0) reference = std::move(g);
    });
  }
  // Run to the checkpoint, then "crash" (the World is destroyed).
  {
    World world(4);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9> solver(c, tgvConfig(n));
      initTgv(solver, n);
      solver.run(atStep);
      save_group_checkpoint(solver, prefix);
    });
  }
  // Fresh world: restore, finish, compare bit for bit.
  {
    World world(4);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9> solver(c, tgvConfig(n));
      initTgv(solver, n);
      load_group_checkpoint(solver, prefix);
      EXPECT_EQ(solver.stepsDone(), static_cast<std::uint64_t>(atStep));
      solver.run(total - atStep);
      PopulationField got = solver.gatherPopulations(0);
      if (c.rank() == 0) {
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i)
          ASSERT_EQ(got.data()[i], reference.data()[i]);
      }
    });
  }
  removeGroup(prefix, 4);
}

TEST(GroupCheckpoint, ManifestRecordsDecomposition) {
  const std::string prefix = tmpPrefix("swlb_group_b");
  World world(2);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {16, 8, 1};
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 1, 1};
    DistributedSolver<D2Q9> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0, 0, 0});
    solver.run(3);
    save_group_checkpoint(solver, prefix);
  });
  std::ifstream in(group_manifest_path(prefix));
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string manifest = ss.str();
  EXPECT_NE(manifest.find("ranks 2"), std::string::npos);
  EXPECT_NE(manifest.find("global 16 8 1"), std::string::npos);
  EXPECT_NE(manifest.find("procgrid 2 1 1"), std::string::npos);
  EXPECT_NE(manifest.find("steps 3"), std::string::npos);
  removeGroup(prefix, 2);
}

TEST(GroupCheckpoint, RejectsWrongDecomposition) {
  const std::string prefix = tmpPrefix("swlb_group_c");
  {
    World world(4);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9> solver(c, tgvConfig(16));
      initTgv(solver, 16);
      save_group_checkpoint(solver, prefix);
    });
  }
  // Restoring onto 2 ranks must fail loudly.
  World world(2);
  EXPECT_THROW(world.run([&](Comm& c) {
    DistributedSolver<D2Q9>::Config cfg = tgvConfig(16);
    cfg.procGrid = {2, 1, 1};
    DistributedSolver<D2Q9> solver(c, cfg);
    initTgv(solver, 16);
    load_group_checkpoint(solver, prefix);
  }),
               Error);
  removeGroup(prefix, 4);
}

TEST(GroupCheckpoint, MissingManifestThrows) {
  World world(1);
  EXPECT_THROW(world.run([&](Comm& c) {
    DistributedSolver<D2Q9>::Config cfg = tgvConfig(8);
    cfg.procGrid = {1, 1, 1};
    DistributedSolver<D2Q9> solver(c, cfg);
    initTgv(solver, 8);
    load_group_checkpoint(solver, tmpPrefix("swlb_group_missing"));
  }),
               Error);
}

TEST(GatheredOutput, MacroscopicFieldsMatchSerialReference) {
  const int n = 16;
  // Serial reference.
  CollisionConfig col;
  col.omega = 1.3;
  Solver<D2Q9> ref(Grid(n, n, 1), col, Periodicity{true, true, true});
  ref.finalizeMask();
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  ref.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {-0.02 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5))),
         0.02 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5))), 0};
  });
  ref.run(20);
  ScalarField rhoRef(ref.grid());
  VectorField uRef(ref.grid());
  ref.computeMacroscopic(rhoRef, uRef);

  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    solver.run(20);
    ScalarField rho;
    VectorField u;
    gather_macroscopic(solver, 0, rho, u);
    if (c.rank() == 0) {
      for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
          ASSERT_EQ(rho(x, y, 0), rhoRef(x, y, 0));
          ASSERT_EQ(u.at(x, y, 0), uRef.at(x, y, 0));
        }
    }
  });
}

TEST(GatheredOutput, VtkFileWrittenOnRootOnly) {
  const std::string path = tmpPrefix("swlb_gathered.vtk");
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(16));
    initTgv(solver, 16);
    solver.run(5);
    write_vtk_gathered(solver, 0, path);
  });
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("DIMENSIONS 16 16 1"), std::string::npos);
  EXPECT_NE(ss.str().find("VECTORS velocity"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swlb::runtime
