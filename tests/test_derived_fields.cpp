// Pressure and deviatoric-stress recovery, plus the core-group step-time
// estimator combining the traffic meter with the pipeline model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/derived_fields.hpp"
#include "core/solver.hpp"
#include "perf/sw_estimate.hpp"

namespace swlb {
namespace {

TEST(Pressure, GaugeAboutReferenceDensity) {
  EXPECT_DOUBLE_EQ(lattice_pressure(1.0), 0.0);
  EXPECT_NEAR(lattice_pressure(1.03), 0.01, 1e-12);
  Grid g(4, 4, 1);
  ScalarField rho(g, 1.06), p(g);
  compute_pressure(rho, p);
  EXPECT_NEAR(p(2, 2, 0), 0.02, 1e-12);
}

TEST(Stress, VanishesAtEquilibrium) {
  Real f[D3Q19::Q];
  equilibria<D3Q19>(1.05, {0.04, -0.02, 0.01}, f);
  const SymTensor s = deviatoric_stress<D3Q19>(f, 1.3);
  EXPECT_NEAR(s.xx, 0, 1e-14);
  EXPECT_NEAR(s.xy, 0, 1e-14);
  EXPECT_NEAR(s.yz, 0, 1e-14);
}

TEST(Stress, CouetteShearMatchesNewtonianLaw) {
  // Steady Couette: sigma_xy = rho * nu * du/dy everywhere in the gap.
  const int nx = 4, ny = 24;
  const Real tau = 0.9;
  const Real nu = viscosity_from_tau(tau);
  const Real uw = 0.04;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau);
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  const auto lid = solver.materials().addMovingWall({uw, 0, 0});
  solver.paint({{0, ny - 1, 0}, {nx, ny, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(12000);

  // Apply the periodic wrap so the regather sees valid halo populations.
  apply_periodic(solver.f(), Periodicity{true, false, true});
  const Real dudy = uw / (ny - 1);  // linear profile across the gap
  const Real expected = 1.0 * nu * dudy;
  for (int y = 2; y < ny - 3; ++y) {
    const SymTensor s = cell_stress<D2Q9>(solver.f(), solver.mask(),
                                          solver.materials(), 1, y, 0,
                                          cfg.omega);
    EXPECT_NEAR(s.xy, expected, 0.03 * expected) << "row " << y;
    // Normal deviatoric components stay negligible in simple shear.
    EXPECT_LT(std::abs(s.xx), 0.1 * expected);
  }
}

TEST(Stress, SymTensorComponentAccessor) {
  SymTensor s{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(s.component(0, 0), 1);
  EXPECT_EQ(s.component(1, 1), 2);
  EXPECT_EQ(s.component(2, 2), 3);
  EXPECT_EQ(s.component(0, 1), 4);
  EXPECT_EQ(s.component(1, 0), 4);  // symmetric
  EXPECT_EQ(s.component(0, 2), 5);
  EXPECT_EQ(s.component(2, 1), 6);
}

// ----------------------------------------------------------- sw estimate

TEST(SwEstimate, LbmIsMemoryBoundOnTheCpeCluster) {
  // Build a fake report with the production traffic ratio and check the
  // estimate composes as documented.
  sw::SwKernelReport rep;
  rep.cellsUpdated = 1000000;
  rep.dmaSeconds = 0.012;
  rep.fabricSeconds = 0.0005;

  const auto spec = sw::MachineSpec::sw26010().cg;
  const auto e = perf::estimate_sw_step(rep, spec, perf::LbmCostModel{}, 0.9);
  EXPECT_TRUE(e.memoryBound());
  EXPECT_NEAR(e.stepSeconds, std::max(e.dmaSeconds, e.computeSeconds) + 0.0005,
              1e-15);
  EXPECT_NEAR(e.mlups, 1.0 / e.stepSeconds, 1e-9);
}

TEST(SwEstimate, PoorSchedulingCanMakeComputeTheBottleneck) {
  sw::SwKernelReport rep;
  rep.cellsUpdated = 1000000;
  rep.dmaSeconds = 0.0005;  // generous memory system: compute exposed
  const auto spec = sw::MachineSpec::sw26010().cg;
  const auto tuned = perf::estimate_sw_step(rep, spec, perf::LbmCostModel{}, 1.0);
  const auto naive = perf::estimate_sw_step(rep, spec, perf::LbmCostModel{}, 0.0);
  EXPECT_GT(naive.computeSeconds, tuned.computeSeconds);
  EXPECT_GT(naive.stepSeconds, tuned.stepSeconds);
}

TEST(SwEstimate, WiderVectorsOfProCutComputeTime) {
  sw::SwKernelReport rep;
  rep.cellsUpdated = 1000000;
  rep.dmaSeconds = 0.01;
  const auto tl = perf::estimate_sw_step(rep, sw::MachineSpec::sw26010().cg,
                                         perf::LbmCostModel{});
  const auto pro = perf::estimate_sw_step(rep, sw::MachineSpec::sw26010pro().cg,
                                          perf::LbmCostModel{});
  EXPECT_LT(pro.computeSeconds, tl.computeSeconds);
}

TEST(SwEstimate, EndToEndWithRealEmulatedKernel) {
  // Run a real block through the emulator and estimate its step time: the
  // fused D3Q19 kernel must come out memory bound (the premise of the
  // whole paper).
  const int nx = 32, ny = 32, nz = 8;
  Grid g(nx, ny, nz);
  PopulationField src(g, D3Q19::Q), dst(g, D3Q19::Q);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0.02, 0, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= nz; ++z)
      for (int y = -1; y <= ny; ++y)
        for (int x = -1; x <= nx; ++x) src(q, x, y, z) = feq[q];

  sw::CpeCluster cluster(sw::MachineSpec::sw26010().cg);
  sw::SwKernelConfig cfg;
  cfg.collision.omega = 1.5;
  const auto rep =
      sw::sw_stream_collide<D3Q19>(cluster, src, dst, mask, mats, cfg);
  const auto est = perf::estimate_sw_step(rep, sw::MachineSpec::sw26010().cg,
                                          perf::LbmCostModel{}, 0.9);
  EXPECT_TRUE(est.memoryBound());
  // Small blocks pay heavy ghost-row overhead in the emulator's
  // serialized DMA model; still a sane fraction of the roofline bound.
  EXPECT_GT(est.mlups, 2.0);
  EXPECT_LT(est.mlups, 90.4);  // below the roofline bound
}

}  // namespace
}  // namespace swlb
