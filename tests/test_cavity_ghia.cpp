// Lid-driven cavity at Re = 100 validated against the reference solution
// of Ghia, Ghia & Shin (1982): centreline velocity profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/solver.hpp"

namespace swlb {
namespace {

// Ghia et al. (1982), Table I/II, Re = 100 (129x129 multigrid solution).
// u_x / U_lid along the vertical centreline, sampled at y/H:
const std::vector<std::pair<Real, Real>> kGhiaU = {
    {0.9766, 0.84123}, {0.9688, 0.78871}, {0.9609, 0.73722},
    {0.9531, 0.68717}, {0.8516, 0.23151}, {0.7344, 0.00332},
    {0.6172, -0.13641}, {0.5000, -0.20581}, {0.4531, -0.21090},
    {0.2813, -0.15662}, {0.1719, -0.10150}, {0.1016, -0.06434},
    {0.0703, -0.04775}, {0.0625, -0.04192}, {0.0547, -0.03717},
};
// u_y / U_lid along the horizontal centreline, sampled at x/H:
const std::vector<std::pair<Real, Real>> kGhiaV = {
    {0.9688, -0.05906}, {0.9609, -0.07391}, {0.9531, -0.08864},
    {0.9453, -0.10313}, {0.9063, -0.16914}, {0.8594, -0.22445},
    {0.8047, -0.24533}, {0.5000, 0.05454},  {0.2344, 0.17527},
    {0.2266, 0.17507},  {0.1563, 0.16077},  {0.0938, 0.12317},
    {0.0781, 0.10890},  {0.0703, 0.10091},  {0.0625, 0.09233},
};

/// Linear interpolation of a cell-centred profile at normalized position.
Real interpolate(const std::vector<Real>& profile, Real frac) {
  const int n = static_cast<int>(profile.size());
  const Real pos = frac * n - Real(0.5);  // cell centres at (i + 0.5)/n
  const int i = std::clamp(static_cast<int>(std::floor(pos)), 0, n - 2);
  const Real t = std::clamp<Real>(pos - i, 0, 1);
  return profile[static_cast<std::size_t>(i)] * (1 - t) +
         profile[static_cast<std::size_t>(i) + 1] * t;
}

/// Run the Re=100 cavity with the given population storage type and
/// compare centreline profiles against Ghia et al.  `tol` is the allowed
/// max deviation (in lid units) and `probeTol` the steady-state probe
/// convergence threshold: f32 storage quantizes each step's populations,
/// so the probe plateaus around the single-precision noise floor and
/// cannot meet the f64 run's 1e-8 criterion.
template <class S>
void runGhiaComparison(Real tol, Real probeTol,
                       KernelVariant variant = KernelVariant::Fused) {
  const int n = 64;
  const Real uLid = 0.1;
  const Real re = 100.0;
  const Real nu = uLid * n / re;

  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  // Fluid region: n x n cells; the lid is an extra row of moving-wall
  // cells above, so all four half-way wall planes bound a square cavity
  // of side H = n (walls at -0.5 and n - 0.5 in both axes).
  Solver<D2Q9, S> solver(Grid(n, n + 1, 1), cfg,
                         Periodicity{false, false, true});
  solver.setVariant(variant);
  const auto lid = solver.materials().addMovingWall({uLid, 0, 0});
  solver.paint({{0, n, 0}, {n, n + 1, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});

  // Iterate to steady state (checked by probe convergence).
  Real prevProbe = 0;
  for (int block = 0; block < 60; ++block) {
    solver.run(500);
    const Real probe = solver.velocity(n / 2, n / 4, 0).x;
    if (block > 10 && std::abs(probe - prevProbe) < probeTol * uLid) break;
    prevProbe = probe;
  }

  // u_x along the vertical centreline x = n/2 (between two cell columns:
  // average them); fluid rows 0 .. n-1.
  std::vector<Real> ux;
  for (int y = 0; y < n; ++y)
    ux.push_back((solver.velocity(n / 2 - 1, y, 0).x +
                  solver.velocity(n / 2, y, 0).x) /
                 (2 * uLid));
  Real maxErrU = 0;
  for (const auto& [yFrac, ref] : kGhiaU)
    maxErrU = std::max(maxErrU, std::abs(interpolate(ux, yFrac) - ref));
  EXPECT_LT(maxErrU, tol) << "u_x centreline vs Ghia et al.";

  std::vector<Real> uy;
  for (int x = 0; x < n; ++x)
    uy.push_back((solver.velocity(x, n / 2 - 1, 0).y +
                  solver.velocity(x, n / 2, 0).y) /
                 (2 * uLid));
  Real maxErrV = 0;
  for (const auto& [xFrac, ref] : kGhiaV)
    maxErrV = std::max(maxErrV, std::abs(interpolate(uy, xFrac) - ref));
  EXPECT_LT(maxErrV, tol) << "u_y centreline vs Ghia et al.";

  // Qualitative checks: primary vortex centre slightly above centre and
  // toward the right wall at Re = 100.
  EXPECT_LT(interpolate(ux, Real(0.5)), 0.0);   // return flow at mid-height
  EXPECT_GT(interpolate(ux, Real(0.97)), 0.5);  // strong flow under the lid
}

TEST(GhiaCavity, Re100CentrelineProfilesMatchReference) {
  runGhiaComparison<Real>(0.035, 1e-8);
}

// The same benchmark with float (weight-shifted) population storage.  The
// tolerance is slightly looser (0.04 vs 0.035): the stored-deviation
// quantization perturbs the converged field by O(1e-5) in lid units, well
// inside the discretization error, but the steady-state probe needs a
// coarser criterion (1e-6 vs 1e-8 of uLid) to terminate at the f32 noise
// floor.
TEST(GhiaCavity, Re100F32StorageMatchesReferenceWithinLooserTolerance) {
  runGhiaComparison<float>(0.04, 1e-6);
}

// End-to-end physics with the new kernel variants, at f32 storage so the
// run doubles as a reduced-precision soak.  The SIMD kernel is bit-
// identical to fused, so any deviation here means the bulk/boundary run
// segmentation broke; the esoteric kernel additionally proves the
// in-place odd-phase macroscopic accessors on a real benchmark.
TEST(GhiaCavity, Re100SimdKernelMatchesReference) {
  runGhiaComparison<float>(0.04, 1e-6, KernelVariant::Simd);
}

TEST(GhiaCavity, Re100EsotericKernelMatchesReference) {
  runGhiaComparison<float>(0.04, 1e-6, KernelVariant::Esoteric);
}

}  // namespace
}  // namespace swlb
