// swlb::coll — collective communication subsystem (DESIGN.md §7).
//
// Correctness strategy: every collective x dtype x algorithm x rank count
// is checked against a serial left-fold reference computed from the same
// per-rank inputs.  Reduction inputs are small integers (exactly
// representable in float/double), so *any* association of the fold gives
// the bitwise-same answer and the reference comparison is exact even for
// the ring's rotated operand order.  Determinism (run-to-run bit
// identity, cross-rank bit identity) is asserted separately with
// non-representable irrational inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "obs/metrics.hpp"
#include "runtime/comm.hpp"
#include "sw/spec.hpp"

namespace swlb::coll {
namespace {

using runtime::Comm;
using runtime::World;
using runtime::WorldConfig;

constexpr int kRankCounts[] = {1, 2, 3, 4, 5, 7, 8, 16};
constexpr Algo kAlgos[] = {Algo::Naive, Algo::Tree, Algo::Ring};
constexpr Op kOps[] = {Op::Sum, Op::Min, Op::Max};

const char* algoName(Algo a) {
  switch (a) {
    case Algo::Auto: return "Auto";
    case Algo::Naive: return "Naive";
    case Algo::Tree: return "Tree";
    case Algo::Ring: return "Ring";
  }
  return "?";
}

CollConfig forced(Algo a) {
  CollConfig cfg;
  cfg.allreduce = cfg.reduce = cfg.broadcast = a;
  cfg.gather = cfg.allgather = cfg.reduceScatter = a;
  return cfg;
}

/// Exactly representable per-rank test data: small integers, so every
/// fold order agrees bitwise and Sum never rounds.
template <typename T>
T val(int rank, std::size_t i) {
  return static_cast<T>((rank * 7 + static_cast<int>(i) * 3) % 21 - 10);
}

template <typename T>
T refOp(T a, T b, Op op) {
  switch (op) {
    case Op::Sum: return a + b;
    case Op::Min: return a < b ? a : b;
    case Op::Max: return b < a ? a : b;
  }
  return a;
}

/// Serial reference: left fold over ranks 0..P-1 of val(r, i).
template <typename T>
std::vector<T> refReduce(int ranks, std::size_t n, Op op) {
  std::vector<T> acc(n);
  for (std::size_t i = 0; i < n; ++i) acc[i] = val<T>(0, i);
  for (int r = 1; r < ranks; ++r)
    for (std::size_t i = 0; i < n; ++i)
      acc[i] = refOp(acc[i], val<T>(r, i), op);
  return acc;
}

/// Every collective of one dtype under one forced algorithm, verified
/// against the serial reference.  Runs inside a World rank function.
template <typename T>
void exerciseType(Comm& c, Algo algo) {
  SCOPED_TRACE(std::string("algo=") + algoName(algo) +
               " P=" + std::to_string(c.size()) +
               " rank=" + std::to_string(c.rank()));
  Collectives cs(c, forced(algo));
  const int P = c.size();
  const int r = c.rank();
  const std::size_t n = 13;  // prime: uneven ring chunks for every P > 1
  const int root = P > 1 ? 1 : 0;  // non-zero root exercises virtual ranks

  for (Op op : kOps) {
    const std::vector<T> expect = refReduce<T>(P, n, op);
    // allreduce: every rank converges to the reference.
    std::vector<T> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = val<T>(r, i);
    cs.allreduce(std::span<T>(v), op);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v[i], expect[i]) << i;

    // reduce: only the root's buffer is specified.
    std::vector<T> v2(n);
    for (std::size_t i = 0; i < n; ++i) v2[i] = val<T>(r, i);
    cs.reduce(root, std::span<T>(v2), op);
    if (r == root)
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v2[i], expect[i]) << i;

    // reduce_scatter: this rank's chunk of the reference.
    const auto [lo, hi] = Collectives::chunkRange(n, P, r);
    std::vector<T> in(n), chunk(hi - lo);
    for (std::size_t i = 0; i < n; ++i) in[i] = val<T>(r, i);
    cs.reduce_scatter(std::span<const T>(in), std::span<T>(chunk), op);
    for (std::size_t i = lo; i < hi; ++i)
      EXPECT_EQ(chunk[i - lo], expect[i]) << i;
  }

  // broadcast: root's payload lands everywhere.
  std::vector<T> b(n);
  if (r == root)
    for (std::size_t i = 0; i < n; ++i) b[i] = val<T>(root, i);
  cs.broadcast(root, std::span<T>(b));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(b[i], val<T>(root, i)) << i;

  // gather: blocks in physical rank order on the root.
  std::vector<T> mine(n);
  for (std::size_t i = 0; i < n; ++i) mine[i] = val<T>(r, i);
  std::vector<T> out(r == root ? static_cast<std::size_t>(P) * n : 0);
  cs.gather<T>(root, mine, out);
  if (r == root)
    for (int rr = 0; rr < P; ++rr)
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(rr) * n + i], val<T>(rr, i))
            << rr << "/" << i;

  // allgather: the same blocks on every rank.
  std::vector<T> all(static_cast<std::size_t>(P) * n);
  cs.allgather<T>(mine, all);
  for (int rr = 0; rr < P; ++rr)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(all[static_cast<std::size_t>(rr) * n + i], val<T>(rr, i))
          << rr << "/" << i;
}

TEST(Coll, EveryOpDtypeAlgorithmRankCountMatchesSerialReference) {
  for (int P : kRankCounts) {
    World world(P);
    world.run([&](Comm& c) {
      for (Algo algo : kAlgos) {
        exerciseType<double>(c, algo);
        exerciseType<float>(c, algo);
        exerciseType<std::int64_t>(c, algo);
      }
    });
  }
}

TEST(Coll, AutoPolicySelectsBySize) {
  World world(4);
  world.run([](Comm& c) {
    Collectives def(c);
    EXPECT_EQ(def.resolve(Algo::Auto, 8), Algo::Tree);
    EXPECT_EQ(def.resolve(Algo::Auto, 1 << 20), Algo::Ring);
    EXPECT_EQ(def.resolve(Algo::Naive, 1 << 20), Algo::Naive);

    CollConfig cfg;
    cfg.ringThresholdBytes = 256;
    Collectives cs(c, cfg);
    EXPECT_EQ(cs.resolve(Algo::Auto, 255), Algo::Tree);
    EXPECT_EQ(cs.resolve(Algo::Auto, 256), Algo::Ring);

    // Auto must still be correct, whatever it resolves to.
    std::vector<std::int64_t> v(100);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = val<std::int64_t>(c.rank(), i);
    cs.allreduce(std::span<std::int64_t>(v), Op::Sum);
    const auto expect = refReduce<std::int64_t>(c.size(), v.size(), Op::Sum);
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], expect[i]);
  });
}

TEST(Coll, CostModelAgreesWithSelectionPolicyAtExtremes) {
  const sw::MachineSpec spec = sw::MachineSpec::sw26010();
  const perf::NetworkModel model(spec.net, 4);
  using CA = perf::NetworkModel::CollAlgo;
  // Large payload at modest rank count: ring's bytes/P rounds win.
  const std::size_t big = 1 << 20;
  EXPECT_LT(model.collectiveSeconds(CA::Ring, big, 16),
            model.collectiveSeconds(CA::Tree, big, 16));
  EXPECT_LT(model.collectiveSeconds(CA::Tree, big, 16),
            model.collectiveSeconds(CA::Naive, big, 16));
  // Tiny payload: latency dominates, log-depth tree wins over 2(P-1) hops.
  EXPECT_LT(model.collectiveSeconds(CA::Tree, 8, 16),
            model.collectiveSeconds(CA::Ring, 8, 16));
  EXPECT_LT(model.collectiveSeconds(CA::Tree, 8, 16),
            model.collectiveSeconds(CA::Naive, 8, 16));
  // The default threshold sits where the model says rings pay off.
  World world(2);
  world.run([&](Comm& c) {
    Collectives cs(c);
    EXPECT_EQ(cs.resolve(Algo::Auto, big), Algo::Ring);
    EXPECT_EQ(cs.resolve(Algo::Auto, 8), Algo::Tree);
  });
}

TEST(Coll, GathervCollectsVariableCounts) {
  for (int P : {1, 3, 5, 8}) {
    World world(P);
    world.run([&](Comm& c) {
      Collectives cs(c);
      const int r = c.rank();
      std::vector<std::size_t> counts(static_cast<std::size_t>(P));
      std::size_t total = 0;
      for (int rr = 0; rr < P; ++rr) {
        counts[static_cast<std::size_t>(rr)] =
            static_cast<std::size_t>(rr) + 1;
        total += counts[static_cast<std::size_t>(rr)];
      }
      std::vector<double> mine(static_cast<std::size_t>(r) + 1);
      for (std::size_t i = 0; i < mine.size(); ++i) mine[i] = val<double>(r, i);
      std::vector<double> out(r == 0 ? total : 0);
      cs.gatherv<double>(0, mine, counts, out);
      if (r == 0) {
        std::size_t k = 0;
        for (int rr = 0; rr < P; ++rr)
          for (std::size_t i = 0; i <= static_cast<std::size_t>(rr); ++i)
            EXPECT_EQ(out[k++], val<double>(rr, i)) << rr << "/" << i;
      }
    });
  }
}

TEST(Coll, ChunkRangeCoversAndBalances) {
  // n not divisible by parts: first n % parts chunks get the extra.
  const std::size_t n = 13;
  const int parts = 5;
  std::size_t covered = 0;
  for (int i = 0; i < parts; ++i) {
    const auto [lo, hi] = Collectives::chunkRange(n, parts, i);
    EXPECT_EQ(lo, covered);
    covered = hi;
    EXPECT_TRUE(hi - lo == 2 || hi - lo == 3);
  }
  EXPECT_EQ(covered, n);
  // Degenerate: more parts than elements -> trailing empty chunks.
  const auto [lo8, hi8] = Collectives::chunkRange(3, 8, 7);
  EXPECT_EQ(lo8, hi8);
}

// ---- determinism ---------------------------------------------------------

/// Run one allreduce of irrational doubles and return every rank's
/// resulting buffer.
std::vector<std::vector<double>> runOnce(int P, Algo algo, std::size_t n) {
  std::vector<std::vector<double>> results(static_cast<std::size_t>(P));
  World world(P);
  world.run([&](Comm& c) {
    Collectives cs(c, forced(algo));
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = std::sin(0.7 * static_cast<double>(c.rank()) +
                      1.3 * static_cast<double>(i)) /
             3.0;
    cs.allreduce(std::span<double>(v), Op::Sum);
    results[static_cast<std::size_t>(c.rank())] = v;
  });
  return results;
}

TEST(Coll, RepeatedRunsAreBitIdenticalAndRanksAgree) {
  for (Algo algo : {Algo::Tree, Algo::Ring, Algo::Naive}) {
    SCOPED_TRACE(algoName(algo));
    const auto a = runOnce(7, algo, 13);
    const auto b = runOnce(7, algo, 13);
    for (int r = 0; r < 7; ++r) {
      // Run-to-run bit identity (fixed config, P, payload).
      EXPECT_EQ(0, std::memcmp(a[static_cast<std::size_t>(r)].data(),
                               b[static_cast<std::size_t>(r)].data(),
                               13 * sizeof(double)))
          << "run-to-run, rank " << r;
      // Cross-rank bit identity within one run: the reduced value is
      // computed once and distributed, never re-reduced per rank.
      EXPECT_EQ(0, std::memcmp(a[0].data(),
                               a[static_cast<std::size_t>(r)].data(),
                               13 * sizeof(double)))
          << "cross-rank, rank " << r;
    }
  }
}

// ---- interleaving / tag isolation ----------------------------------------

TEST(Coll, BackToBackCollectivesInterleavedWithUserTrafficDoNotInterfere) {
  World world(5);
  world.run([](Comm& c) {
    Collectives cs(c);
    const int P = c.size();
    const int r = c.rank();
    for (int round = 0; round < 50; ++round) {
      // User point-to-point in flight around the collectives (tag >= 0).
      const int peer = (r + 1) % P;
      c.sendValue(peer, 0, r * 1000 + round);
      std::int64_t s = r + round;
      cs.allreduce(std::span<std::int64_t>(&s, 1), Op::Sum);
      std::int64_t expectSum = 0;
      for (int rr = 0; rr < P; ++rr) expectSum += rr + round;
      EXPECT_EQ(s, expectSum) << round;
      cs.barrier();
      EXPECT_EQ(c.recvValue<int>((r + P - 1) % P, 0),
                ((r + P - 1) % P) * 1000 + round);
    }
    // All ranks consumed the same number of sequence numbers.
    EXPECT_EQ(c.collSequence(), 100u);
  });
}

// ---- topology ------------------------------------------------------------

TEST(Coll, TopologyGroupsRanksByNodeAndCutsRingCrossings) {
  // Round-robin placement: worst case for a ring — every edge crosses.
  const std::vector<int> nodeOf = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(Topology::identity(8).ringCrossings(nodeOf), 8);
  const Topology grouped = Topology::fromMapping(nodeOf);
  EXPECT_EQ(grouped.ringCrossings(nodeOf), 2);  // one cut per node
  // order is a permutation and pos is its inverse.
  for (int v = 0; v < 8; ++v)
    EXPECT_EQ(grouped.pos[static_cast<std::size_t>(
                  grouped.order[static_cast<std::size_t>(v)])],
              v);
}

TEST(Coll, TopologyAwareRingStaysCorrect) {
  // 2 ranks per supernode: processorsPerSupernode=2, cgsPerProcessor=1.
  sw::NetworkSpec net = sw::MachineSpec::sw26010().net;
  net.processorsPerSupernode = 2;
  const perf::NetworkModel model(net, 1);
  World world(8);
  world.run([&](Comm& c) {
    CollConfig cfg = forced(Algo::Ring);
    cfg.topology = &model;
    Collectives cs(c, cfg);
    EXPECT_EQ(cs.topology().size(), 8);
    std::vector<double> v(17);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = val<double>(c.rank(), i);
    cs.allreduce(std::span<double>(v), Op::Sum);
    const auto expect = refReduce<double>(8, v.size(), Op::Sum);
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], expect[i]);
    // Gather under a permuted topology still lands blocks by physical rank.
    std::vector<double> mine(3, static_cast<double>(c.rank()));
    std::vector<double> out(c.rank() == 0 ? 24 : 0);
    cs.gather<double>(0, mine, out);
    if (c.rank() == 0)
      for (int rr = 0; rr < 8; ++rr)
        EXPECT_EQ(out[static_cast<std::size_t>(rr) * 3], rr);
  });
}

// ---- observability -------------------------------------------------------

TEST(Coll, RingAllreduceByteCounterMatchesAnalyticVolume) {
  // P=8, n divisible by P: each rank sends 2 (P-1) n/P elements in the
  // reduce-scatter + allgather phases -> world total 2 (P-1) n elements.
  constexpr int P = 8;
  constexpr std::size_t n = 1024;
  obs::MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  World world(P, wcfg);
  world.run([](Comm& c) {
    Collectives cs(c, forced(Algo::Ring));
    std::vector<double> v(n, 1.0);
    cs.allreduce(std::span<double>(v), Op::Sum);
  });
  const std::uint64_t expected = 2ull * (P - 1) * n * sizeof(double);
  EXPECT_EQ(reg.counterValue("coll.allreduce.bytes_sent"), expected);
  EXPECT_EQ(reg.counterValue("coll.allreduce.messages_sent"),
            2ull * (P - 1) * P);
  EXPECT_EQ(reg.counterValue("coll.bytes_sent"), expected);
}

TEST(Coll, TreeAllreduceByteCounterMatchesAnalyticVolume) {
  // Binomial reduce + broadcast: every rank except the root receives the
  // full payload once in each phase -> 2 (P-1) full payloads in total.
  constexpr int P = 8;
  constexpr std::size_t n = 64;
  obs::MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  World world(P, wcfg);
  world.run([](Comm& c) {
    Collectives cs(c, forced(Algo::Tree));
    std::vector<double> v(n, 1.0);
    cs.allreduce(std::span<double>(v), Op::Sum);
  });
  EXPECT_EQ(reg.counterValue("coll.allreduce.bytes_sent"),
            2ull * (P - 1) * n * sizeof(double));
}

// ---- barrier semantics ---------------------------------------------------

TEST(Coll, BarrierNoRankExitsBeforeAllEnter) {
  constexpr int P = 7;
  std::atomic<int> entered{0};
  World world(P);
  world.run([&](Comm& c) {
    Collectives cs(c);
    for (int round = 0; round < 10; ++round) {
      entered.fetch_add(1);
      cs.barrier();
      EXPECT_GE(entered.load(), P * (round + 1)) << "round " << round;
    }
  });
  World single(1);
  single.run([](Comm& c) { Collectives(c).barrier(); });  // must not hang
}

// ---- fault propagation ---------------------------------------------------

TEST(Coll, DroppedCollectiveMessageSurfacesAsTimeout) {
  WorldConfig cfg;
  runtime::FaultPlan::MessageFault drop;
  drop.action = runtime::FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.nth = 0;  // first 0 -> 1 message of any flow
  cfg.faults.messageFaults.push_back(drop);
  World world(2, cfg);
  EXPECT_THROW(world.run([](Comm& c) {
                 c.setRecvTimeout(0.05);
                 Collectives cs(c);
                 std::int64_t v = c.rank();
                 // Tree allreduce: rank 1's contribution reaches rank 0,
                 // but the result broadcast 0 -> 1 is dropped; rank 1's
                 // receive must time out instead of deadlocking.
                 cs.allreduce(std::span<std::int64_t>(&v, 1), Op::Sum);
               }),
               runtime::TimeoutError);
}

TEST(Coll, ChecksummedCollectiveDetectsCorruption) {
  WorldConfig cfg;
  runtime::FaultPlan::MessageFault corrupt;
  corrupt.action = runtime::FaultPlan::Action::Corrupt;
  corrupt.src = 0;
  corrupt.dst = 1;
  corrupt.nth = 0;
  cfg.faults.messageFaults.push_back(corrupt);
  World world(2, cfg);
  EXPECT_THROW(world.run([](Comm& c) {
                 CollConfig cc;
                 cc.checksummed = true;
                 Collectives cs(c, cc);
                 std::vector<double> v(8, static_cast<double>(c.rank()));
                 cs.broadcast(0, std::span<double>(v));
               }),
               runtime::CorruptionError);
}

TEST(Coll, StaleCollectiveTrafficIsDrainedCurrentIsKept) {
  World world(2);
  world.run([](Comm& c) {
    // Simulate an aborted collective: a leftover message tagged with a
    // sequence this rank has moved past, plus live traffic of the next
    // collective (a fast peer already inside it).
    const int peer = 1 - c.rank();
    const std::uint64_t aborted = c.nextCollSequence();  // both consume 0
    c.send(peer, runtime::colltag::encode(aborted), nullptr, 0);  // stale
    c.send(peer, 77, nullptr, 0);                            // stale user
    const std::uint64_t next = c.collSequence();  // the upcoming collective
    c.send(peer, runtime::colltag::encode(next), nullptr, 0);  // must survive
    // Sync without a collective (a barrier would advance the sequence):
    // mailbox delivery is FIFO per sender, so once the marker arrives the
    // peer's earlier sends are all present.
    c.sendValue(peer, 99, 1);
    EXPECT_EQ(c.recvValue<int>(peer, 99), 1);
    EXPECT_EQ(c.drainMailbox(), 2u);  // stale coll + stale user discarded
    // The current-sequence message survived the drain.
    EXPECT_NO_THROW(
        c.recv(peer, runtime::colltag::encode(next), nullptr, 0, 1.0));
  });
}

}  // namespace
}  // namespace swlb::coll
