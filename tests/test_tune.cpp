// Auto-tuner (DESIGN.md §9): deterministic plan selection, cache
// round-trip/invalidation, and agreement of the ring-vs-tree pick with
// the network cost model away from the crossover.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "perf/network.hpp"
#include "tune/tuner.hpp"

namespace swlb::tune {
namespace {

namespace fs = std::filesystem;

std::string tmpPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TuningInput cavityInput() {
  TuningInput in;
  in.lattice = "D3Q19";
  in.extent = {64, 64, 32};
  in.ranks = 4;
  return in;
}

// ------------------------------------------------------------ planning

TEST(Tuner, PlanIsByteDeterministic) {
  // Same inputs -> byte-identical serialized plans (trialSteps == 0 keeps
  // the search purely model/emulator-driven).
  const TuningInput in = cavityInput();
  const TuningPlan a = Tuner().plan(in);
  const TuningPlan b = Tuner().plan(in);
  EXPECT_EQ(a, b);
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(a.source, "model");
}

TEST(Tuner, PlanRespectsKnobRanges) {
  const TuningInput in = cavityInput();
  const TuningPlan p = Tuner().plan(in);
  EXPECT_GE(p.chunkX, 1);
  // chunk_x never exceeds the LDM cap recorded in the evidence.
  const auto cap = p.evidence.find("chunk.cap");
  ASSERT_NE(cap, p.evidence.end());
  EXPECT_LE(p.chunkX, static_cast<int>(cap->second));
  EXPECT_GE(p.ringThresholdBytes, std::size_t{1});
  EXPECT_EQ(p.precision, "f64");
  // Without backend trials the model has no evidence to deviate from the
  // production default.
  EXPECT_EQ(p.backend, "fused");
  EXPECT_TRUE(p.patchBackends.empty());
  // The emulator ladder left its evidence behind (auditable plans).
  EXPECT_NE(p.evidence.count("model.halo.fraction"), 0u);
  EXPECT_NE(p.evidence.count("model.coll.crossover_bytes"), 0u);
}

TEST(Tuner, SingleRankNeverOverlaps) {
  TuningInput in = cavityInput();
  in.ranks = 1;
  const TuningPlan p = Tuner().plan(in);
  // No communication to hide: the simpler schedule wins.
  EXPECT_EQ(p.haloMode, runtime::HaloMode::Sequential);
}

TEST(Tuner, RejectsMalformedInputs) {
  TuningInput in = cavityInput();
  in.extent = {0, 64, 64};
  EXPECT_THROW(Tuner().plan(in), Error);
  in = cavityInput();
  in.ranks = 0;
  EXPECT_THROW(Tuner().plan(in), Error);
  in = cavityInput();
  in.lattice = "D3Q7";
  EXPECT_THROW(Tuner().plan(in), Error);
  in = cavityInput();
  in.precision = "f8";
  EXPECT_THROW(Tuner().plan(in), Error);
}

TEST(Tuner, AppliesPlanToSubsystemConfigs) {
  const TuningPlan p = Tuner().plan(cavityInput());
  runtime::HaloMode mode = runtime::HaloMode::Sequential;
  apply(p, mode);
  EXPECT_EQ(mode, p.haloMode);
  coll::CollConfig ccfg;
  apply(p, ccfg);
  EXPECT_EQ(ccfg.ringThresholdBytes, p.ringThresholdBytes);
  sw::SwKernelConfig scfg;
  apply(p, scfg);
  EXPECT_EQ(scfg.chunkX, p.chunkX);
}

TEST(Tuner, AppliesBackendToSolverKnobs) {
  TuningPlan p = Tuner().plan(cavityInput());
  KernelVariant v = KernelVariant::Generic;
  apply(p, v);  // "fused" plan overrides whatever the caller had
  EXPECT_EQ(v, KernelVariant::Fused);
  p.backend = "esoteric";
  apply(p, v);
  EXPECT_EQ(v, KernelVariant::Esoteric);
  p.backend = "threads";
  apply(p, v);
  EXPECT_EQ(v, KernelVariant::Threads);
  // The registry-name overload drives the string-typed configs.  (Qualified
  // calls: a std::string argument would otherwise drag std::apply into the
  // ADL overload set, which hard-errors on non-tuple arguments.)
  std::string name = "generic";
  swlb::tune::apply(p, name);
  EXPECT_EQ(name, "threads");
  // Uncatalogued names (from a newer cache schema) leave the caller's
  // values untouched.
  p.backend = "warp-speculative";
  apply(p, v);
  swlb::tune::apply(p, name);
  EXPECT_EQ(v, KernelVariant::Threads);
  EXPECT_EQ(name, "threads");
}

TEST(Tuner, AppliesPatchBackendMap) {
  TuningPlan p = Tuner().plan(cavityInput());
  p.patchBackends = {{0, "simd"}, {3, "threads"}, {5, "warp-speculative"}};
  std::map<int, std::string> m = {{9, "stale"}};
  swlb::tune::apply(p, m);
  // Catalogued entries replace the map wholesale; unknown names drop.
  const std::map<int, std::string> want = {{0, "simd"}, {3, "threads"}};
  EXPECT_EQ(m, want);
}

TEST(Tuner, BackendTrialsPickFromMeasuredLadder) {
  TunerConfig cfg;
  cfg.backendTrialSteps = 2;
  cfg.trialCellsPerRank = 1 << 12;  // keep the proxy lattice tiny
  TuningInput in = cavityInput();
  in.ranks = 1;
  const TuningPlan p = Tuner(cfg).plan(in);
  EXPECT_EQ(p.source, "measured");
  EXPECT_NE(find_backend_info(p.backend), nullptr) << p.backend;
  // The trial ladder leaves auditable MLUPS evidence for every rung.
  EXPECT_NE(p.evidence.count("trial.backend.fused_mlups"), 0u);
  EXPECT_NE(p.evidence.count("trial.backend.simd_mlups"), 0u);
  EXPECT_NE(p.evidence.count("trial.backend.esoteric_mlups"), 0u);
  EXPECT_NE(p.evidence.count("trial.backend.threads_mlups"), 0u);
}

TEST(Tuner, PatchCellsYieldPerPatchBackendMap) {
  TunerConfig cfg;
  cfg.backendTrialSteps = 2;
  cfg.trialCellsPerRank = 1 << 12;
  TuningInput in = cavityInput();
  in.ranks = 1;
  // A tiny patch and a huge one: the predicted-seconds argmin may differ
  // per patch, but every mapped name must be catalogued and every patch
  // id covered by default-or-override.
  in.patchCells = {64.0, 4.0e6};
  const TuningPlan p = Tuner(cfg).plan(in);
  EXPECT_NE(p.evidence.count("patchmap.overrides"), 0u);
  for (const auto& [id, name] : p.patchBackends) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 2);
    EXPECT_NE(find_backend_info(name), nullptr) << name;
    EXPECT_NE(name, p.backend);  // overrides only record deviations
  }
}

// --------------------------------------------------------------- cache

TEST(TuningCache, RoundTripsThroughDisk) {
  const TuningInput in = cavityInput();
  const TuningPlan p = Tuner().plan(in);
  TuningCache cache;
  cache.store(in.key(), p);
  const std::string path = tmpPath("swlb_tune_roundtrip.json");
  cache.save(path);

  const TuningCache loaded = TuningCache::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  const auto hit = loaded.lookup(in.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, p);  // every field, evidence map included
  // Save -> load -> save is byte-stable.
  EXPECT_EQ(loaded.toString(), cache.toString());
  fs::remove(path);
}

TEST(TuningCache, BackendSurvivesRoundTrip) {
  const TuningInput in = cavityInput();
  TuningPlan p = Tuner().plan(in);
  p.backend = "esoteric";
  p.patchBackends = {{1, "simd"}, {4, "threads"}};
  TuningCache cache;
  cache.store(in.key(), p);
  const std::string path = tmpPath("swlb_tune_variant.json");
  cache.save(path);
  const TuningCache loaded = TuningCache::load(path);
  const auto hit = loaded.lookup(in.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->backend, "esoteric");
  EXPECT_EQ(hit->patchBackends, p.patchBackends);
  EXPECT_EQ(*hit, p);
  fs::remove(path);
}

TEST(TuningCache, LegacyKernelVariantFieldReadsAsBackend) {
  // A cache written by a pre-backend-layer binary names the knob
  // "kernel_variant" and has no "backend"/"patch_backends" keys; the
  // tolerant reader maps it onto TuningPlan::backend.
  const TuningInput in = cavityInput();
  TuningPlan p = Tuner().plan(in);
  p.backend = "simd";
  TuningCache cache;
  cache.store(in.key(), p);
  std::string json = cache.toString();
  const std::string be = "\"backend\": \"simd\", ";
  auto pos = json.find(be);
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, be.size());
  const std::string pb = "\"patch_backends\": {}, ";
  pos = json.find(pb);
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, pb.size());

  const std::string path = tmpPath("swlb_tune_legacy_kv.json");
  {
    std::ofstream out(path);
    out << json;
  }
  const TuningCache loaded = TuningCache::load(path);
  const auto hit = loaded.lookup(in.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->backend, "simd");
  EXPECT_TRUE(hit->patchBackends.empty());
  EXPECT_EQ(*hit, p);
  fs::remove(path);
}

TEST(TuningCache, PatchesPerRankSurvivesRoundTrip) {
  const TuningInput in = cavityInput();
  TuningPlan p = Tuner().plan(in);
  p.patchesPerRank = 4;
  TuningCache cache;
  cache.store(in.key(), p);
  const std::string path = tmpPath("swlb_tune_patches.json");
  cache.save(path);
  const TuningCache loaded = TuningCache::load(path);
  const auto hit = loaded.lookup(in.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patchesPerRank, 4);
  EXPECT_EQ(*hit, p);
  fs::remove(path);
}

TEST(TuningCache, PlanWithoutPatchesFieldReadsAsOne) {
  // A cache written before the patches_per_rank knob existed must still
  // load, with the field at its pre-knob default (one patch per rank,
  // i.e. the monolithic block decomposition).
  const TuningInput in = cavityInput();
  TuningPlan p = Tuner().plan(in);
  p.patchesPerRank = 1;
  TuningCache cache;
  cache.store(in.key(), p);
  std::string json = cache.toString();
  const std::string field = "\"patches_per_rank\": 1, ";
  const auto pos = json.find(field);
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, field.size());

  const std::string path = tmpPath("swlb_tune_patches_legacy.json");
  {
    std::ofstream out(path);
    out << json;
  }
  const TuningCache loaded = TuningCache::load(path);
  const auto hit = loaded.lookup(in.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patchesPerRank, 1);
  EXPECT_EQ(*hit, p);
  fs::remove(path);
}

TEST(TuningCache, MissesOnAnyKeyMismatch) {
  const TuningInput in = cavityInput();
  TuningCache cache;
  cache.store(in.key(), Tuner().plan(in));

  TuningKey k = in.key();
  k.extent.x = 128;
  EXPECT_FALSE(cache.lookup(k).has_value());
  k = in.key();
  k.ranks = 8;
  EXPECT_FALSE(cache.lookup(k).has_value());
  k = in.key();
  k.precision = "f32";
  EXPECT_FALSE(cache.lookup(k).has_value());
  k = in.key();
  k.lattice = "D2Q9";
  EXPECT_FALSE(cache.lookup(k).has_value());
  EXPECT_TRUE(cache.lookup(in.key()).has_value());
}

TEST(TuningCache, StaleSchemaLoadsEmpty) {
  const std::string path = tmpPath("swlb_tune_stale.json");
  {
    std::ofstream out(path);
    out << "{\"schema\": \"swlb-tune-v0\", \"plans\": []}\n";
  }
  // Unknown schema is staleness, not corruption: discard and re-tune.
  EXPECT_TRUE(TuningCache::load(path).empty());
  fs::remove(path);
  // A missing file is also just an empty cache.
  EXPECT_TRUE(TuningCache::load(tmpPath("swlb_tune_missing.json")).empty());
}

TEST(TuningCache, CorruptFileThrows) {
  const std::string path = tmpPath("swlb_tune_corrupt.json");
  {
    std::ofstream out(path);
    out << "{\"schema\": \"swlb-tune-v1\", \"plans\": [{\"key\": ";
  }
  EXPECT_THROW(TuningCache::load(path), Error);
  fs::remove(path);
}

TEST(TuningCache, CachedPlanSkipsTheSearch) {
  const TuningInput in = cavityInput();
  obs::MetricsRegistry reg;
  obs::ScopedBind bind(nullptr, &reg);
  TuningCache cache;
  const Tuner tuner;
  const TuningPlan first = tuner.planCached(cache, in);
  const TuningPlan second = tuner.planCached(cache, in);
  EXPECT_EQ(first, second);
  EXPECT_EQ(reg.counterValue("tune.cache.miss"), 1u);
  EXPECT_EQ(reg.counterValue("tune.cache.hit"), 1u);
  // Only the miss ran the search.
  EXPECT_EQ(reg.counterValue("tune.plans"), 1u);
}

// ----------------------------------------------- ring-vs-tree crossover

TEST(Tuner, RingTreePickAgreesWithNetworkModelAwayFromCrossover) {
  const sw::MachineSpec machine = sw::MachineSpec::sw26010();
  const perf::NetworkModel net(machine.net, machine.coreGroupsPerProcessor);
  using CA = perf::NetworkModel::CollAlgo;
  for (int ranks : {4, 16, 64, 256}) {
    TuningInput in = cavityInput();
    in.ranks = ranks;
    const TuningPlan p = Tuner().plan(in);
    const std::size_t cross = Tuner::ringCrossoverBytes(machine, ranks);
    EXPECT_EQ(p.ringThresholdBytes, cross) << "ranks=" << ranks;
    // Well below the crossover the model must prefer the tree, well above
    // it the ring — and the plan's choice must match on both sides.
    const std::size_t below = cross / 8, above = cross * 8;
    if (below >= 8) {
      EXPECT_LT(net.collectiveSeconds(CA::Tree, below, ranks),
                net.collectiveSeconds(CA::Ring, below, ranks))
          << "ranks=" << ranks;
      EXPECT_EQ(collectiveChoice(p, below), CollChoice::Tree)
          << "ranks=" << ranks;
    }
    EXPECT_GT(net.collectiveSeconds(CA::Tree, above, ranks),
              net.collectiveSeconds(CA::Ring, above, ranks))
        << "ranks=" << ranks;
    EXPECT_EQ(collectiveChoice(p, above), CollChoice::Ring)
        << "ranks=" << ranks;
  }
}

TEST(Tuner, CrossoverIsExactByte) {
  // Bisection pins the first byte count where the ring is at least as
  // fast as the tree: one byte below it the tree still wins.
  const sw::MachineSpec machine = sw::MachineSpec::sw26010();
  const perf::NetworkModel net(machine.net, machine.coreGroupsPerProcessor);
  using CA = perf::NetworkModel::CollAlgo;
  for (int ranks : {16, 64}) {
    const std::size_t cross = Tuner::ringCrossoverBytes(machine, ranks);
    ASSERT_GT(cross, std::size_t{1});
    ASSERT_LT(cross, std::size_t{1} << 30);
    EXPECT_LE(net.collectiveSeconds(CA::Ring, cross, ranks),
              net.collectiveSeconds(CA::Tree, cross, ranks));
    EXPECT_LT(net.collectiveSeconds(CA::Tree, cross - 1, ranks),
              net.collectiveSeconds(CA::Ring, cross - 1, ranks));
  }
}

}  // namespace
}  // namespace swlb::tune
