// Block decomposition: coverage, balance, neighbour lookup, grid choice.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/decomposition.hpp"
#include "runtime/halo.hpp"

namespace swlb::runtime {
namespace {

TEST(Decomposition, BlocksTileTheDomainExactly) {
  const Int3 global{100, 70, 50};
  Decomposition d(global, {4, 3, 1});
  std::vector<char> covered(static_cast<std::size_t>(global.x) * global.y * global.z, 0);
  long long total = 0;
  for (int r = 0; r < d.rankCount(); ++r) {
    const Box3 b = d.blockOf(r);
    total += b.volume();
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          auto& c = covered[(static_cast<std::size_t>(z) * global.y + y) * global.x + x];
          EXPECT_EQ(c, 0) << "cell covered twice";
          c = 1;
        }
  }
  EXPECT_EQ(total, static_cast<long long>(global.x) * global.y * global.z);
}

TEST(Decomposition, RemainderSpreadKeepsBalanceTight) {
  // 103 cells over 4 ranks: blocks of 26/26/26/25 along x.
  Decomposition d({103, 10, 10}, {4, 1, 1});
  EXPECT_LE(d.imbalance(), 26.0 / 25.0 + 1e-12);
  int sizes[4];
  for (int r = 0; r < 4; ++r) sizes[r] = d.localSize(r).x;
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2] + sizes[3], 103);
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(sizes[r] == 25 || sizes[r] == 26);
}

TEST(Decomposition, CoordsRankRoundTrip) {
  Decomposition d({40, 40, 40}, {4, 3, 2});
  for (int r = 0; r < d.rankCount(); ++r) {
    const Int3 c = d.coordsOf(r);
    EXPECT_EQ(d.rankOf(c, false, false, false), r);
  }
}

TEST(Decomposition, NonPeriodicEdgeHasNoNeighbour) {
  Decomposition d({40, 40, 10}, {4, 2, 1});
  EXPECT_EQ(d.rankOf({-1, 0, 0}, false, false, false), -1);
  EXPECT_EQ(d.rankOf({4, 1, 0}, false, false, false), -1);
  EXPECT_EQ(d.rankOf({0, 2, 0}, false, false, false), -1);
}

TEST(Decomposition, PeriodicAxesWrapAround) {
  Decomposition d({40, 40, 10}, {4, 2, 1});
  EXPECT_EQ(d.rankOf({-1, 0, 0}, true, false, false), d.rankOf({3, 0, 0}, false, false, false));
  EXPECT_EQ(d.rankOf({4, 1, 0}, true, false, false), d.rankOf({0, 1, 0}, false, false, false));
  EXPECT_EQ(d.rankOf({0, -1, 0}, false, true, false), d.rankOf({0, 1, 0}, false, false, false));
}

TEST(Decomposition, ChoosePrefers2DXYScheme) {
  // Paper §IV-C1: 2-D xy decomposition, full z per subdomain.
  const Int3 grid = Decomposition::choose(16, {1000, 1000, 1000});
  EXPECT_EQ(grid.z, 1);
  EXPECT_EQ(grid.x * grid.y, 16);
  // A square domain wants a square process grid.
  EXPECT_EQ(grid.x, 4);
  EXPECT_EQ(grid.y, 4);
}

TEST(Decomposition, ChooseAdaptsToElongatedDomains) {
  // Long x domain: more cuts along x reduce halo area.
  const Int3 grid = Decomposition::choose(8, {8000, 100, 100});
  EXPECT_EQ(grid.z, 1);
  EXPECT_GT(grid.x, grid.y);
}

TEST(Decomposition, ChooseHandlesPrimeRankCounts) {
  const Int3 grid = Decomposition::choose(7, {700, 700, 10});
  EXPECT_EQ(grid.x * grid.y * grid.z, 7);
}

TEST(Decomposition, Choose3DBeats2DOnCubes) {
  // Allowing pz > 1 cannot do worse than forcing pz == 1.
  const Int3 g2 = Decomposition::choose(64, {512, 512, 512}, false);
  const Int3 g3 = Decomposition::choose(64, {512, 512, 512}, true);
  Decomposition d2({512, 512, 512}, g2);
  Decomposition d3({512, 512, 512}, g3);
  EXPECT_LE(d3.totalHaloArea(), d2.totalHaloArea());
  EXPECT_GT(g3.z, 1);  // cube wants a 4x4x4 grid
}

TEST(Decomposition, SingleRankHasNoHalo) {
  Decomposition d({50, 50, 50}, {1, 1, 1});
  EXPECT_EQ(d.totalHaloArea(), 0);
  EXPECT_EQ(d.imbalance(), 1.0);
  EXPECT_EQ(d.blockOf(0).volume(), 50LL * 50 * 50);
}

TEST(Decomposition, RejectsInvalidConfigurations) {
  EXPECT_THROW(Decomposition({0, 10, 10}, {1, 1, 1}), Error);
  EXPECT_THROW(Decomposition({10, 10, 10}, {0, 1, 1}), Error);
  EXPECT_THROW(Decomposition({4, 4, 4}, {8, 1, 1}), Error);  // px > nx
  EXPECT_THROW(Decomposition::choose(0, {10, 10, 10}), Error);
}

TEST(Decomposition, HaloAreaModelMatchesHaloExchangeVolume) {
  // Cost-model regression (the totalHaloArea undercount bugfix): on a
  // 2x2 grid the model must equal the cell volume HaloExchange actually
  // ships — corner columns included, strips spanning the z halo.
  // bytesPerExchange is in turn pinned to the live halo.bytes wire
  // counters by test_obs_integration.HaloBytesCounterMatchesModel.
  const Int3 global{10, 8, 4};
  Decomposition d(global, {2, 2, 1});
  const int q = 19;
  const std::size_t elem = sizeof(double);
  std::size_t wire = 0;
  for (int r = 0; r < d.rankCount(); ++r) {
    const Int3 n = d.localSize(r);
    HaloExchange h(d, r, Periodicity{false, false, false},
                   Grid(n.x, n.y, n.z));
    wire += h.bytesPerExchange(q, elem);
  }
  EXPECT_EQ(wire, static_cast<std::size_t>(d.totalHaloArea()) * q * elem);
}

TEST(Decomposition, HaloAreaCountsCornersAndZHalo) {
  // 2x2 over 10x8x4: each rank has 2 face strips + 1 corner column, all
  // spanning nz + 2 = 6 rows.  Σ = 2*(2*4*6 + 2*5*6 + ... ) worked out:
  // x-faces: 4 strips of ny*6, y-faces: 4 strips of nx*6, corners: 4
  // columns of 6.
  Decomposition d({10, 8, 4}, {2, 2, 1});
  const long long expected = 4 * (4LL * 6) + 4 * (5LL * 6) + 4 * 6;
  EXPECT_EQ(d.totalHaloArea(), expected);
}

TEST(Decomposition, ChooseThrowsWhenNoGridFits) {
  // 7 is prime and exceeds every axis: the explicit not-found fallback
  // (formerly masked by a dead ternary) must throw, not return garbage.
  EXPECT_THROW(Decomposition::choose(7, {4, 4, 4}), Error);
  EXPECT_THROW(Decomposition::choose(7, {4, 4, 4}, true), Error);
}

TEST(Decomposition, FluidWeightedImbalanceSeesTheMask) {
  // Left half solid: volume imbalance says "balanced", the fluid-weighted
  // overload reports rank 1 carrying twice the mean load.
  const Int3 global{8, 4, 2};
  Decomposition d(global, {2, 1, 1});
  MaskField mask(Grid(global.x, global.y, global.z), MaterialTable::kFluid);
  for (int z = 0; z < global.z; ++z)
    for (int y = 0; y < global.y; ++y)
      for (int x = 0; x < 4; ++x) mask(x, y, z) = MaterialTable::kSolid;
  EXPECT_EQ(d.imbalance(), 1.0);
  EXPECT_NEAR(d.imbalance(mask), 2.0, 1e-12);
  // Uniform mask: both metrics agree on balance.
  MaskField fluid(Grid(global.x, global.y, global.z), MaterialTable::kFluid);
  EXPECT_NEAR(d.imbalance(fluid), 1.0, 1e-12);
}

TEST(Decomposition, PaperScaleWeakScalingBlocks) {
  // Fig. 13 setup: 500x700x100 per CG, 160,000 CGs as 400x400 grid.
  const Int3 global{500 * 400, 700 * 400, 100};
  Decomposition d(global, {400, 400, 1});
  EXPECT_EQ(d.rankCount(), 160000);
  const Int3 local = d.localSize(0);
  EXPECT_EQ(local.x, 500);
  EXPECT_EQ(local.y, 700);
  EXPECT_EQ(local.z, 100);
  // 5.6 trillion cells in total.
  const double cells = static_cast<double>(global.x) * global.y * global.z;
  EXPECT_NEAR(cells, 5.6e12, 1e10);
}

}  // namespace
}  // namespace swlb::runtime
