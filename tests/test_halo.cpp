// Halo-exchange plan unit tests: neighbour discovery, strip geometry,
// inner/shell decomposition, traffic accounting (complements the
// end-to-end equivalence tests in test_distributed.cpp).
#include <gtest/gtest.h>

#include <set>

#include "runtime/halo.hpp"

namespace swlb::runtime {
namespace {

TEST(HaloPlan, InteriorRankHasEightNeighbours) {
  Decomposition d({40, 40, 10}, {4, 4, 1});
  // Rank at grid (1,1): fully interior.
  const int rank = d.rankOf({1, 1, 0}, false, false, false);
  HaloExchange h(d, rank, Periodicity{false, false, false},
                 Grid(10, 10, 10));
  EXPECT_EQ(h.neighborCount(), 8);
}

TEST(HaloPlan, CornerRankWithoutPeriodicityHasThree) {
  Decomposition d({40, 40, 10}, {4, 4, 1});
  HaloExchange h(d, 0, Periodicity{false, false, false}, Grid(10, 10, 10));
  EXPECT_EQ(h.neighborCount(), 3);
}

TEST(HaloPlan, PeriodicWrapRestoresAllEight) {
  Decomposition d({40, 40, 10}, {4, 4, 1});
  HaloExchange h(d, 0, Periodicity{true, true, false}, Grid(10, 10, 10));
  EXPECT_EQ(h.neighborCount(), 8);
}

TEST(HaloPlan, SingleColumnWrapsOntoItself) {
  Decomposition d({40, 40, 10}, {1, 4, 1});
  HaloExchange h(d, 0, Periodicity{true, true, false}, Grid(40, 10, 10));
  // +x and -x neighbours are this rank itself; corners too.
  EXPECT_EQ(h.neighborCount(), 8);
}

TEST(HaloPlan, BytesPerExchangeMatchStripGeometry) {
  // 2x2 grid, non-periodic: each rank sends 1 x-face (ny rows), 1 y-face,
  // 1 corner column, all spanning nz + 2 halo layers.
  Decomposition d({20, 16, 8}, {2, 2, 1});
  const Int3 local = d.localSize(0);  // 10 x 8 x 8
  HaloExchange h(d, 0, Periodicity{false, false, false},
                 Grid(local.x, local.y, local.z));
  const std::size_t zExt = static_cast<std::size_t>(local.z) + 2;
  const std::size_t cells = (local.y + local.x + 1) * zExt;
  EXPECT_EQ(h.bytesPerExchange(19), cells * 19 * sizeof(Real));
}

TEST(HaloPlan, InnerBoxShrinksOnlyDecomposedAxes) {
  {
    Decomposition d({20, 16, 8}, {2, 1, 1});
    HaloExchange h(d, 0, Periodicity{false, false, false}, Grid(10, 16, 8));
    const Box3 inner = h.innerBox();
    EXPECT_EQ(inner.lo.x, 1);
    EXPECT_EQ(inner.hi.x, 9);
    EXPECT_EQ(inner.lo.y, 0);  // y not decomposed, not shrunk
    EXPECT_EQ(inner.hi.y, 16);
  }
  {
    Decomposition d({20, 16, 8}, {1, 1, 1});
    HaloExchange h(d, 0, Periodicity{false, false, false}, Grid(20, 16, 8));
    EXPECT_EQ(h.innerBox(), (Grid(20, 16, 8)).interior());
    EXPECT_TRUE(h.boundaryShell().empty());
  }
}

TEST(HaloPlan, ShellPlusInnerTilesTheInteriorExactly) {
  Decomposition d({24, 20, 6}, {2, 2, 1});
  const Int3 local = d.localSize(3);
  Grid g(local.x, local.y, local.z);
  HaloExchange h(d, 3, Periodicity{true, true, false}, g);

  std::set<std::tuple<int, int, int>> covered;
  auto cover = [&](const Box3& b) {
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x) {
          const auto [it, fresh] = covered.insert({x, y, z});
          EXPECT_TRUE(fresh) << "cell covered twice: " << x << "," << y << "," << z;
        }
  };
  cover(h.innerBox());
  for (const Box3& b : h.boundaryShell()) cover(b);
  EXPECT_EQ(static_cast<long long>(covered.size()), g.interior().volume());
}

TEST(HaloPlan, RejectsUnsupportedConfigurations) {
  Decomposition dz({20, 20, 20}, {2, 1, 2});
  EXPECT_THROW(HaloExchange(dz, 0, Periodicity{}, Grid(10, 20, 10)), Error);
  Decomposition d({20, 20, 20}, {2, 1, 1});
  EXPECT_THROW(HaloExchange(d, 0, Periodicity{}, Grid(10, 20, 20, /*halo=*/2)),
               Error);
}

TEST(HaloExchangeData, MaskStripsArriveInNeighbourHalo) {
  // Two ranks side by side: rank 0 paints a material column at its +x
  // face; after exchangeMask rank 1 must see it in its -x halo.
  World world(2);
  world.run([](Comm& c) {
    Decomposition d({8, 4, 2}, {2, 1, 1});
    const Int3 local = d.localSize(c.rank());
    Grid g(local.x, local.y, local.z);
    MaskField mask(g, MaterialTable::kFluid);
    if (c.rank() == 0) {
      for (int z = 0; z < g.nz; ++z)
        for (int y = 0; y < g.ny; ++y) mask(g.nx - 1, y, z) = 7;
    }
    HaloExchange h(d, c.rank(), Periodicity{false, false, false}, g);
    h.exchangeMask(c, mask);
    if (c.rank() == 1) {
      for (int z = 0; z < g.nz; ++z)
        for (int y = 0; y < g.ny; ++y)
          EXPECT_EQ(mask(-1, y, z), 7) << y << "," << z;
    }
  });
}

TEST(HaloExchangeData, PopulationStripsIncludeZHaloRows) {
  // The exchanged strips span z in [-1, nz+1): corner pulls across the
  // subdomain edge need the sender's z-halo rows.
  World world(2);
  world.run([](Comm& c) {
    Decomposition d({8, 4, 2}, {2, 1, 1});
    const Int3 local = d.localSize(c.rank());
    Grid g(local.x, local.y, local.z);
    PopulationField f(g, 19);
    f.fill(static_cast<Real>(c.rank() + 1));
    if (c.rank() == 0) {
      // Distinct marker in the z-halo row of the +x face.
      f(5, g.nx - 1, 2, -1) = 42.0;
    }
    HaloExchange h(d, c.rank(), Periodicity{false, false, false}, g);
    h.exchange(c, f);
    if (c.rank() == 1) {
      EXPECT_EQ(f(5, -1, 2, -1), 42.0);
      EXPECT_EQ(f(0, -1, 0, 0), 1.0);  // rank 0's fill value
    }
  });
}

}  // namespace
}  // namespace swlb::runtime
