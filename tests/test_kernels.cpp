// Cross-validation of the stream/collide kernel variants: the optimized
// fused SoA path (production), the generic pull kernel, the two-step
// scheme, the push scheme, and the AoS layout must all agree.
#include <gtest/gtest.h>

#include <random>

#include "core/kernels.hpp"
#include "core/macroscopic.hpp"

namespace swlb {
namespace {

using D = D3Q19;

struct KernelEnv {
  Grid grid;
  PopulationField src, dst;
  MaskField mask;
  MaterialTable mats;
  CollisionConfig cfg;
  Periodicity per;

  explicit KernelEnv(int nx = 10, int ny = 8, int nz = 6, bool periodic = true)
      : grid(nx, ny, nz, 1),
        src(grid, D::Q),
        dst(grid, D::Q),
        mask(grid, MaterialTable::kFluid),
        per{periodic, periodic, periodic} {
    cfg.omega = 1.4;
  }

  void addObstacle() {
    for (int z = 2; z < 4; ++z)
      for (int y = 2; y < 5; ++y)
        for (int x = 3; x < 6; ++x) mask(x, y, z) = MaterialTable::kSolid;
  }

  void randomize(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<Real> dist(-0.02, 0.02);
    const Grid& g = grid;
    for (int z = -1; z <= g.nz; ++z)
      for (int y = -1; y <= g.ny; ++y)
        for (int x = -1; x <= g.nx; ++x) {
          Real feq[D::Q];
          equilibria<D>(1.0 + dist(rng), {dist(rng), dist(rng), dist(rng)}, feq);
          for (int i = 0; i < D::Q; ++i) src(i, x, y, z) = feq[i];
        }
  }

  void finalize() {
    fill_halo_mask(mask, per, MaterialTable::kSolid);
    apply_periodic(src, per);
  }
};

void expectFieldsEqual(const PopulationField& a, const PopulationField& b,
                       Real tol = 0) {
  const Grid& g = a.grid();
  for (int q = 0; q < a.q(); ++q)
    for (int z = 0; z < g.nz; ++z)
      for (int y = 0; y < g.ny; ++y)
        for (int x = 0; x < g.nx; ++x) {
          if (tol == 0) {
            ASSERT_EQ(a(q, x, y, z), b(q, x, y, z))
                << "q=" << q << " (" << x << "," << y << "," << z << ")";
          } else {
            ASSERT_NEAR(a(q, x, y, z), b(q, x, y, z), tol)
                << "q=" << q << " (" << x << "," << y << "," << z << ")";
          }
        }
}

TEST(KernelEquivalence, FusedMatchesGenericWithObstacle) {
  KernelEnv s;
  s.addObstacle();
  s.randomize(11);
  s.finalize();

  PopulationField dstGeneric(s.grid, D::Q);
  stream_collide_fused<D>(s.src, s.dst, s.mask, s.mats, s.cfg, s.grid.interior());
  stream_collide_generic<D>(s.src, dstGeneric, s.mask, s.mats, s.cfg,
                            s.grid.interior());
  expectFieldsEqual(s.dst, dstGeneric, 1e-15);
}

TEST(KernelEquivalence, FusedMatchesTwoStep) {
  KernelEnv s;
  s.addObstacle();
  s.randomize(21);
  s.finalize();

  PopulationField dst2(s.grid, D::Q);
  stream_collide_fused<D>(s.src, s.dst, s.mask, s.mats, s.cfg, s.grid.interior());
  stream_only<D>(s.src, dst2, s.mask, s.mats, s.grid.interior());
  collide_inplace<D>(dst2, s.mask, s.mats, s.cfg, s.grid.interior());
  expectFieldsEqual(s.dst, dst2, 1e-15);
}

TEST(KernelEquivalence, SoAMatchesAoSLayout) {
  KernelEnv s;
  s.addObstacle();
  s.randomize(31);
  s.finalize();

  PopulationFieldAoS srcA(s.grid, D::Q), dstA(s.grid, D::Q);
  const Grid& g = s.grid;
  for (int q = 0; q < D::Q; ++q)
    for (int z = -1; z <= g.nz; ++z)
      for (int y = -1; y <= g.ny; ++y)
        for (int x = -1; x <= g.nx; ++x) srcA(q, x, y, z) = s.src(q, x, y, z);

  stream_collide_generic<D>(s.src, s.dst, s.mask, s.mats, s.cfg, g.interior());
  stream_collide_generic<D>(srcA, dstA, s.mask, s.mats, s.cfg, g.interior());

  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < g.nz; ++z)
      for (int y = 0; y < g.ny; ++y)
        for (int x = 0; x < g.nx; ++x)
          ASSERT_EQ(s.dst(q, x, y, z), dstA(q, x, y, z));
}

TEST(KernelEquivalence, RangeSplitMatchesWholeDomain) {
  // Updating [0, nz/2) and [nz/2, nz) separately must equal one full sweep:
  // this is the property the on-the-fly halo overlap relies on (Fig. 6).
  KernelEnv s;
  s.addObstacle();
  s.randomize(41);
  s.finalize();

  PopulationField dstSplit(s.grid, D::Q);
  stream_collide_fused<D>(s.src, s.dst, s.mask, s.mats, s.cfg, s.grid.interior());

  Box3 lower = s.grid.interior();
  Box3 upper = s.grid.interior();
  lower.hi.z = s.grid.nz / 2;
  upper.lo.z = s.grid.nz / 2;
  stream_collide_fused<D>(s.src, dstSplit, s.mask, s.mats, s.cfg, upper);
  stream_collide_fused<D>(s.src, dstSplit, s.mask, s.mats, s.cfg, lower);
  expectFieldsEqual(s.dst, dstSplit);
}

TEST(Streaming, DeltaPropagatesAlongItsVelocity) {
  KernelEnv s(6, 6, 6);
  s.src.fill(0);
  s.finalize();
  // Put a unit pulse in every direction at cell (2,3,4).
  for (int i = 0; i < D::Q; ++i) s.src(i, 2, 3, 4) = 1.0;
  apply_periodic(s.src, s.per);

  PopulationField dst(s.grid, D::Q);
  stream_only<D>(s.src, dst, s.mask, s.mats, s.grid.interior());
  for (int i = 0; i < D::Q; ++i) {
    const int x = (2 + D::c[i][0] + 6) % 6;
    const int y = (3 + D::c[i][1] + 6) % 6;
    const int z = (4 + D::c[i][2] + 6) % 6;
    EXPECT_EQ(dst(i, x, y, z), 1.0) << "direction " << i;
  }
}

TEST(Streaming, PeriodicWrapCrossesCorners) {
  KernelEnv s(4, 4, 4);
  s.src.fill(0);
  s.finalize();
  // Population moving along (+1,+1,0) placed at the corner cell must
  // reappear at the diagonally opposite cell.
  int qDiag = -1;
  for (int i = 0; i < D::Q; ++i)
    if (D::c[i][0] == 1 && D::c[i][1] == 1 && D::c[i][2] == 0) qDiag = i;
  ASSERT_GE(qDiag, 0);
  s.src(qDiag, 3, 3, 0) = 2.5;
  apply_periodic(s.src, s.per);

  PopulationField dst(s.grid, D::Q);
  stream_only<D>(s.src, dst, s.mask, s.mats, s.grid.interior());
  EXPECT_EQ(dst(qDiag, 0, 0, 0), 2.5);
}

TEST(Streaming, BounceBackReversesAtWall) {
  KernelEnv s(4, 4, 4, /*periodic=*/false);
  s.src.fill(0);
  s.finalize();
  // Cell (0,1,1) is next to the default solid halo in -x; its +x population
  // after streaming must be the pre-step -x population of the same cell.
  int qpx = -1, qmx = -1;
  for (int i = 0; i < D::Q; ++i) {
    if (D::c[i][0] == 1 && D::c[i][1] == 0 && D::c[i][2] == 0) qpx = i;
    if (D::c[i][0] == -1 && D::c[i][1] == 0 && D::c[i][2] == 0) qmx = i;
  }
  s.src(qmx, 0, 1, 1) = 0.75;

  PopulationField dst(s.grid, D::Q);
  stream_only<D>(s.src, dst, s.mask, s.mats, s.grid.interior());
  EXPECT_EQ(dst(qpx, 0, 1, 1), 0.75);
}

TEST(Conservation, PullConservesMassOnPeriodicBox) {
  KernelEnv s;
  s.randomize(51);
  s.finalize();
  const Real m0 = total_mass<D>(s.src, s.mask, s.mats);

  PopulationField* src = &s.src;
  PopulationField* dst = &s.dst;
  for (int step = 0; step < 5; ++step) {
    apply_periodic(*src, s.per);
    stream_collide_fused<D>(*src, *dst, s.mask, s.mats, s.cfg, s.grid.interior());
    std::swap(src, dst);
  }
  EXPECT_NEAR(total_mass<D>(*src, s.mask, s.mats), m0, 1e-10 * m0);
}

TEST(Conservation, PushConservesMassOnPeriodicBox) {
  KernelEnv s;
  s.randomize(61);
  s.finalize();
  const Real m0 = total_mass<D>(s.src, s.mask, s.mats);

  PopulationField* src = &s.src;
  PopulationField* dst = &s.dst;
  for (int step = 0; step < 5; ++step) {
    apply_periodic(*src, s.per);
    stream_collide_push<D>(*src, *dst, s.mask, s.mats, s.cfg, s.grid.interior(),
                           s.per);
    std::swap(src, dst);
  }
  EXPECT_NEAR(total_mass<D>(*src, s.mask, s.mats), m0, 1e-10 * m0);
}

TEST(Conservation, MomentumConservedWithoutWalls) {
  KernelEnv s;
  s.randomize(71);
  s.finalize();
  const Vec3 p0 = total_momentum<D>(s.src, s.mask, s.mats);

  PopulationField* src = &s.src;
  PopulationField* dst = &s.dst;
  for (int step = 0; step < 5; ++step) {
    apply_periodic(*src, s.per);
    stream_collide_fused<D>(*src, *dst, s.mask, s.mats, s.cfg, s.grid.interior());
    std::swap(src, dst);
  }
  const Vec3 p1 = total_momentum<D>(*src, s.mask, s.mats);
  EXPECT_NEAR(p1.x, p0.x, 1e-12);
  EXPECT_NEAR(p1.y, p0.y, 1e-12);
  EXPECT_NEAR(p1.z, p0.z, 1e-12);
}

TEST(Conservation, MassConservedWithBounceBackObstacle) {
  KernelEnv s;
  s.addObstacle();
  s.randomize(81);
  s.finalize();
  // Mass in the fluid region only; bounce-back returns everything.
  const Real m0 = total_mass<D>(s.src, s.mask, s.mats);
  PopulationField* src = &s.src;
  PopulationField* dst = &s.dst;
  for (int step = 0; step < 10; ++step) {
    apply_periodic(*src, s.per);
    stream_collide_fused<D>(*src, *dst, s.mask, s.mats, s.cfg, s.grid.interior());
    std::swap(src, dst);
  }
  EXPECT_NEAR(total_mass<D>(*src, s.mask, s.mats), m0, 1e-10 * m0);
}

}  // namespace
}  // namespace swlb
