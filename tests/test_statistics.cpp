// Running flow statistics and the checkpoint rotation controller.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numbers>

#include "core/solver.hpp"
#include "core/statistics.hpp"
#include "io/checkpoint_controller.hpp"

namespace swlb {
namespace {

namespace fs = std::filesystem;

TEST(FlowStatisticsTest, MeanOfConstantSignalIsExact) {
  Grid g(4, 4, 1);
  FlowStatistics stats(g);
  ScalarField rho(g, 1.1);
  VectorField u(g);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) u.set(x, y, 0, {0.3, -0.2, 0.1});
  for (int s = 0; s < 7; ++s) stats.accumulate(rho, u);
  EXPECT_EQ(stats.samples(), 7u);
  EXPECT_NEAR(stats.meanVelocity(2, 2, 0).x, 0.3, 1e-14);
  EXPECT_NEAR(stats.meanVelocity(2, 2, 0).y, -0.2, 1e-14);
  EXPECT_NEAR(stats.meanDensity(1, 1, 0), 1.1, 1e-14);
  // No fluctuations: every Reynolds stress vanishes.
  for (int a = 0; a < 3; ++a)
    for (int b = a; b < 3; ++b)
      EXPECT_NEAR(stats.reynoldsStress(a, b, 2, 2, 0), 0.0, 1e-16);
}

TEST(FlowStatisticsTest, VarianceOfAlternatingSignal) {
  // u_x alternates +a/-a: mean 0, <u'u'> = a^2 (population variance).
  Grid g(2, 2, 1);
  FlowStatistics stats(g);
  ScalarField rho(g, 1.0);
  VectorField u(g);
  const Real a = 0.05;
  for (int s = 0; s < 1000; ++s) {
    const Real v = (s % 2 == 0) ? a : -a;
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x) u.set(x, y, 0, {v, 0, 0});
    stats.accumulate(rho, u);
  }
  EXPECT_NEAR(stats.meanVelocity(0, 0, 0).x, 0.0, 1e-14);
  EXPECT_NEAR(stats.reynoldsStress(0, 0, 0, 0, 0), a * a, 1e-12);
  EXPECT_NEAR(stats.turbulentKineticEnergy(0, 0, 0), 0.5 * a * a, 1e-12);
}

TEST(FlowStatisticsTest, CrossCorrelationSignAndSymmetry) {
  // u' and v' perfectly correlated: <u'v'> = +a*b; anti-correlated: -a*b.
  Grid g(1, 1, 1);
  FlowStatistics stats(g);
  ScalarField rho(g, 1.0);
  VectorField u(g);
  const Real a = 0.04, b = 0.02;
  for (int s = 0; s < 100; ++s) {
    const Real sgn = (s % 2 == 0) ? 1.0 : -1.0;
    u.set(0, 0, 0, {a * sgn, b * sgn, 0});
    stats.accumulate(rho, u);
  }
  EXPECT_NEAR(stats.reynoldsStress(0, 1, 0, 0, 0), a * b, 1e-12);
  EXPECT_NEAR(stats.reynoldsStress(1, 0, 0, 0, 0),
              stats.reynoldsStress(0, 1, 0, 0, 0), 1e-16);
  EXPECT_THROW(stats.reynoldsStress(0, 3, 0, 0, 0), Error);
}

TEST(FlowStatisticsTest, SinusoidKnownMoments) {
  // u = U0 + A sin(wt): mean -> U0, variance -> A^2/2 over whole periods.
  Grid g(1, 1, 1);
  FlowStatistics stats(g);
  ScalarField rho(g, 1.0);
  VectorField u(g);
  const Real U0 = 0.1, A = 0.03;
  const int period = 64, cycles = 50;
  for (int s = 0; s < period * cycles; ++s) {
    u.set(0, 0, 0, {U0 + A * std::sin(2 * std::numbers::pi_v<Real> * s / period), 0, 0});
    stats.accumulate(rho, u);
  }
  EXPECT_NEAR(stats.meanVelocity(0, 0, 0).x, U0, 1e-10);
  EXPECT_NEAR(stats.reynoldsStress(0, 0, 0, 0, 0), A * A / 2, 1e-6);
}

TEST(FlowStatisticsTest, ResetClearsEverything) {
  Grid g(2, 2, 1);
  FlowStatistics stats(g);
  ScalarField rho(g, 1.0);
  VectorField u(g);
  u.set(0, 0, 0, {0.5, 0, 0});
  stats.accumulate(rho, u);
  stats.reset();
  EXPECT_EQ(stats.samples(), 0u);
  EXPECT_EQ(stats.meanVelocity(0, 0, 0).x, 0.0);
}

TEST(FlowStatisticsTest, SteadyChannelHasVanishingFluctuations) {
  // Integration: a converged Poiseuille flow sampled over time shows
  // mean == instantaneous and ~zero Reynolds stresses.
  const int nx = 4, ny = 16;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  cfg.bodyForce = {1e-6, 0, 0};
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(6000);  // converge

  FlowStatistics stats(solver.grid());
  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  for (int s = 0; s < 50; ++s) {
    solver.run(10);
    solver.computeMacroscopic(rho, u);
    stats.accumulate(rho, u);
  }
  const Vec3 inst = solver.velocity(2, ny / 2, 0);
  EXPECT_NEAR(stats.meanVelocity(2, ny / 2, 0).x, inst.x, 1e-6);
  EXPECT_LT(stats.reynoldsStress(0, 0, 2, ny / 2, 0), 1e-12);
}

// --------------------------------------------------- checkpoint controller

TEST(CheckpointControllerTest, SavesOnIntervalAndRotates) {
  const std::string prefix =
      (fs::temp_directory_path() / "swlb_rotate").string();
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Solver<D2Q9> solver(Grid(8, 8, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0.01, 0, 0});

  io::CheckpointController ctl(prefix, {/*interval=*/5, /*keep=*/2});
  int saves = 0;
  for (int s = 0; s < 23; ++s) {
    solver.step();
    if (ctl.maybeSave(solver)) ++saves;
  }
  EXPECT_EQ(saves, 4);  // steps 5, 10, 15, 20
  ASSERT_EQ(ctl.retained().size(), 2u);
  EXPECT_EQ(ctl.retained().front(), 15u);
  EXPECT_EQ(ctl.retained().back(), 20u);
  // Rotated-out files are gone, retained ones exist.
  EXPECT_FALSE(fs::exists(ctl.pathFor(5)));
  EXPECT_FALSE(fs::exists(ctl.pathFor(10)));
  EXPECT_TRUE(fs::exists(ctl.pathFor(15)));
  EXPECT_TRUE(fs::exists(ctl.pathFor(20)));

  // Restore the newest and confirm the step counter.
  Solver<D2Q9> resumed(Grid(8, 8, 1), cfg, Periodicity{true, true, true});
  resumed.finalizeMask();
  resumed.initUniform(1.0, {0, 0, 0});
  ctl.restoreLatest(resumed);
  EXPECT_EQ(resumed.stepsDone(), 20u);

  ctl.clear();
  EXPECT_FALSE(fs::exists(ctl.pathFor(20)));
  EXPECT_THROW(ctl.restoreLatest(resumed), Error);
}

TEST(CheckpointControllerTest, RejectsDegeneratePolicies) {
  EXPECT_THROW(io::CheckpointController("x", {0, 2}), Error);
  EXPECT_THROW(io::CheckpointController("x", {10, 0}), Error);
}

}  // namespace
}  // namespace swlb
