// Config parser and built-in case builders of the CLI driver.
#include <gtest/gtest.h>

#include <sstream>

#include "app/cases.hpp"
#include "sw/athread.hpp"

namespace swlb::app {
namespace {

Config fromString(const std::string& text) {
  std::istringstream in(text);
  return Config::parse(in);
}

TEST(ConfigParser, KeyValueWithCommentsAndWhitespace) {
  const Config cfg = fromString(
      "# a comment\n"
      "case = cavity\n"
      "  nx =  64   # trailing comment\n"
      "omega=1.5\n"
      "\n"
      "vtk = true\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.getString("case"), "cavity");
  EXPECT_EQ(cfg.getInt("nx"), 64);
  EXPECT_DOUBLE_EQ(cfg.getReal("omega"), 1.5);
  EXPECT_TRUE(cfg.getBool("vtk", false));
}

TEST(ConfigParser, DefaultsAndStrictGetters) {
  const Config cfg = fromString("a = 1\n");
  EXPECT_EQ(cfg.getInt("a"), 1);
  EXPECT_EQ(cfg.getInt("missing", 7), 7);
  EXPECT_EQ(cfg.getString("missing", "x"), "x");
  EXPECT_THROW(cfg.getString("missing"), Error);
  EXPECT_THROW(cfg.getInt("missing"), Error);
}

TEST(ConfigParser, TypeErrorsAreLoud) {
  const Config cfg = fromString("n = twelve\nf = 1.2.3\nb = maybe\n");
  EXPECT_THROW(cfg.getInt("n"), Error);
  EXPECT_THROW(cfg.getReal("f"), Error);
  EXPECT_THROW(cfg.getBool("b", false), Error);
}

TEST(ConfigParser, MalformedLinesThrow) {
  EXPECT_THROW(fromString("this is not a key value pair\n"), Error);
  EXPECT_THROW(fromString("= value\n"), Error);
  EXPECT_THROW(Config::load("/nonexistent/swlb.cfg"), Error);
}

TEST(ConfigParser, BooleanSpellings) {
  const Config cfg = fromString("a=yes\nb=off\nc=1\nd=False\n");
  EXPECT_TRUE(cfg.getBool("a", false));
  EXPECT_FALSE(cfg.getBool("b", true));
  EXPECT_TRUE(cfg.getBool("c", false));
  EXPECT_FALSE(cfg.getBool("d", true));
}

// ---------------------------------------------------------------- cases

TEST(CollisionFromConfig, OmegaTauViscosityAndOperators) {
  EXPECT_DOUBLE_EQ(collision_from_config(fromString("omega = 1.2\n")).omega, 1.2);
  EXPECT_DOUBLE_EQ(collision_from_config(fromString("tau = 0.8\n")).omega, 1.25);
  EXPECT_NEAR(collision_from_config(fromString("viscosity = 0.1666666666666667\n")).omega,
              1.0, 1e-12);
  EXPECT_EQ(collision_from_config(fromString("operator = trt\n")).op,
            CollisionOp::TRT);
  EXPECT_EQ(collision_from_config(fromString("operator = mrt\n")).op,
            CollisionOp::MRT);
  EXPECT_THROW(collision_from_config(fromString("operator = srt\n")), Error);
  EXPECT_THROW(collision_from_config(fromString("omega = 2.5\n")), Error);
  EXPECT_THROW(collision_from_config(fromString("les = true\noperator = mrt\n")),
               Error);
}

TEST(CaseBuilder, CavityRunsAndLidDrives) {
  Case c = build_case(fromString("case = cavity\nnx = 12\nny = 12\nnz = 12\n"));
  ASSERT_EQ(c.name, "cavity");
  c.solver->run(100);
  EXPECT_GT(c.solver->velocity(6, 6, 10).x, 0.0);
}

TEST(CaseBuilder, ChannelDevelopsPoiseuille) {
  Case c = build_case(
      fromString("case = channel\nnx = 4\nny = 16\nnz = 4\nbody_force = 1e-6\n"));
  c.solver->run(4000);
  // Centreline faster than near-wall.
  EXPECT_GT(c.solver->velocity(2, 8, 2).x, c.solver->velocity(2, 0, 2).x);
  EXPECT_GT(c.uRef, 0.0);
}

TEST(CaseBuilder, CylinderHasObstacleAndFlow) {
  Case c = build_case(fromString(
      "case = cylinder\nnx = 40\nny = 20\nnz = 4\ndiameter = 6\nomega = 1.2\n"));
  ASSERT_NE(c.obstacleId, 0);
  int obstacleCells = 0;
  for (int y = 0; y < 20; ++y)
    for (int x = 0; x < 40; ++x)
      if (c.solver->mask()(x, y, 0) == c.obstacleId) ++obstacleCells;
  EXPECT_GT(obstacleCells, 20);
  c.solver->run(50);
  EXPECT_GT(c.solver->velocity(30, 10, 2).x, 0.0);
}

TEST(CaseBuilder, TgvDecays) {
  Case c = build_case(fromString("case = tgv\nnx = 16\nny = 16\nomega = 1.0\n"));
  const Real u0 = std::abs(c.solver->velocity(0, 4, 0).x);
  c.solver->run(300);
  EXPECT_LT(std::abs(c.solver->velocity(0, 4, 0).x), u0);
}

TEST(CaseBuilder, SuboffVoxelizesAHull) {
  Case c = build_case(fromString(
      "case = suboff\nnx = 64\nny = 24\nnz = 24\nhull_length = 32\n"));
  ASSERT_NE(c.obstacleId, 0);
  long long hullCells = 0;
  for (int z = 0; z < 24; ++z)
    for (int y = 0; y < 24; ++y)
      for (int x = 0; x < 64; ++x)
        if (c.solver->mask()(x, y, z) == c.obstacleId) ++hullCells;
  EXPECT_GT(hullCells, 50);
  c.solver->run(30);
  EXPECT_GT(c.solver->velocity(2, 12, 12).x, 0.0);
}

TEST(CaseBuilder, UrbanPaintsBuildingsAndDefaultsToLes) {
  Case c = build_case(fromString("case = urban\nnx = 48\nny = 36\nnz = 16\n"));
  EXPECT_TRUE(c.solver->collision().les);
  int built = 0;
  for (int y = 0; y < 36; ++y)
    for (int x = 0; x < 48; ++x)
      if (c.solver->mask()(x, y, 0) == c.obstacleId) ++built;
  EXPECT_GT(built, 50);
  c.solver->run(30);
  EXPECT_GT(c.solver->velocity(2, 18, 14).x, 0.0);
}

TEST(CaseBuilder, UnknownCaseThrows) {
  EXPECT_THROW(build_case(fromString("case = warpdrive\n")), Error);
  EXPECT_THROW(build_case(fromString("nx = 4\n")), Error);  // no case key
}

// -------------------------------------------------------------- athread

TEST(AthreadApi, SpawnJoinRunsOnAllCpes) {
  sw::Athread at(sw::MachineSpec::sw26010().cg);
  EXPECT_THROW(at.spawnJoin([](sw::CpeContext&) {}), Error);  // before init
  at.init();
  std::vector<Real> mem(64, 0.0);
  at.spawnJoin([&](sw::CpeContext& ctx) {
    auto buf = sw::ldm_malloc<Real>(ctx, 1, "v");
    buf[0] = ctx.id + 1.0;
    sw::athread_put(ctx, mem.data() + ctx.id,
                    std::span<const Real>(buf.data(), 1));
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(mem[static_cast<std::size_t>(i)], i + 1.0);
  EXPECT_EQ(at.cluster().dmaTotal().putTransactions, 64u);
  at.halt();
  EXPECT_FALSE(at.initialized());
}

TEST(AthreadApi, GetAndRegisterCommVerbs) {
  sw::Athread at(sw::MachineSpec::sw26010().cg);
  at.init();
  std::vector<Real> mem(8, 2.5);
  at.spawnJoin([&](sw::CpeContext& ctx) {
    if (ctx.id != 0) return;
    auto buf = sw::ldm_malloc<Real>(ctx, 8, "row");
    sw::athread_get(ctx, mem.data(), buf);
    EXPECT_EQ(buf[7], 2.5);
    // Register comm to a same-row neighbour works, RMA must not exist.
    auto remote = sw::ldm_malloc<Real>(ctx, 8, "remote");
    sw::reg_putr(ctx, 1, std::span<const Real>(buf.data(), 8), remote);
    EXPECT_EQ(remote[0], 2.5);
    EXPECT_THROW(sw::rma_put(ctx, 1, std::span<const Real>(buf.data(), 8), remote),
                 Error);
  });
}

}  // namespace
}  // namespace swlb::app
