// swlb::serve — the multi-tenant simulation service (DESIGN.md §12).
//
// Covers the wire grammar, the admission/scheduling/eviction units, and
// the service-level guarantees the subsystem exists for: deterministic
// admission verdicts, bit-identical evict -> resume continuation, per-job
// fault isolation, and zero checkpoint debris after shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "app/cases.hpp"
#include "io/checkpoint.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

using namespace swlb;
using namespace swlb::serve;

namespace {

/// Scratch directory per test; removed (with contents) on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::string path;
};

int countCheckpointFiles(const std::string& dir) {
  int n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().filename().string().rfind("serve_job", 0) == 0) ++n;
  return n;
}

WireMap submitCavity(const std::string& tenant, int steps, int n = 10,
                     int priority = 1) {
  WireMap req;
  req["op"] = WireValue::ofString("submit");
  req["tenant"] = WireValue::ofString(tenant);
  req["steps"] = WireValue::ofNumber(steps);
  req["priority"] = WireValue::ofNumber(priority);
  req["cfg.case"] = WireValue::ofString("cavity");
  req["cfg.nx"] = WireValue::ofString(std::to_string(n));
  req["cfg.ny"] = WireValue::ofString(std::to_string(n));
  req["cfg.nz"] = WireValue::ofString(std::to_string(n));
  return req;
}

/// Reference hash: the same cavity case run start-to-finish on a single
/// solver with no service in the way.
std::string referenceHash(int n, std::uint64_t steps) {
  app::Config cfg;
  cfg.set("case", "cavity");
  cfg.set("nx", std::to_string(n));
  cfg.set("ny", std::to_string(n));
  cfg.set("nz", std::to_string(n));
  app::Case c = app::build_case(cfg);
  c.solver->run(steps);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    io::fnv1a(c.solver->f().data(), c.solver->f().bytes())));
  return buf;
}

/// Events drained from a session, filterable by kind.
struct Drained {
  std::vector<WireMap> all;
  std::vector<WireMap> ofKind(const std::string& kind) const {
    std::vector<WireMap> out;
    for (const auto& ev : all)
      if (wire_string(ev, "event", "") == kind) out.push_back(ev);
    return out;
  }
};

/// Read events until `count` jobs reached done/failed; "error" events
/// fail the test.
Drained drainUntilFinished(Session& session, int count) {
  Drained d;
  int finished = 0;
  while (finished < count) {
    const auto line = session.nextEvent();
    if (!line) break;
    WireMap ev = decode_line(*line);
    const std::string kind = wire_string(ev, "event", "");
    EXPECT_NE(kind, "error") << *line;
    if (kind == "done" || kind == "failed") ++finished;
    d.all.push_back(std::move(ev));
  }
  EXPECT_EQ(finished, count);
  return d;
}

}  // namespace

// ---- wire grammar ------------------------------------------------------

TEST(Wire, RoundTripPreservesTypesAndEscapes) {
  WireMap m;
  m["op"] = WireValue::ofString("submit");
  m["text"] = WireValue::ofString("a \"b\"\n\tc\\d");
  m["num"] = WireValue::ofNumber(0.25);
  m["count"] = WireValue::ofNumber(1234567);
  m["flag"] = WireValue::ofBool(true);
  const std::string line = encode_line(m);
  const WireMap back = decode_line(line);
  EXPECT_EQ(wire_string(back, "op"), "submit");
  EXPECT_EQ(wire_string(back, "text"), "a \"b\"\n\tc\\d");
  EXPECT_DOUBLE_EQ(wire_number(back, "num"), 0.25);
  EXPECT_DOUBLE_EQ(wire_number(back, "count"), 1234567);
  EXPECT_DOUBLE_EQ(wire_number(back, "flag"), 1);
  // Byte-stable: encoding the decoded map reproduces the line.
  EXPECT_EQ(encode_line(back), line);
}

TEST(Wire, IntegersPrintWithoutExponent) {
  WireMap m;
  m["steps"] = WireValue::ofNumber(1e6);
  EXPECT_EQ(encode_line(m), "{\"steps\":1000000}");
}

TEST(Wire, RejectsNestingAndGarbage) {
  EXPECT_THROW(decode_line("{\"a\":{\"b\":1}}"), Error);
  EXPECT_THROW(decode_line("{\"a\":[1,2]}"), Error);
  EXPECT_THROW(decode_line("{\"a\":1} trailing"), Error);
  EXPECT_THROW(decode_line("not json"), Error);
  EXPECT_THROW(decode_line("{\"a\":}"), Error);
}

TEST(Wire, MissingKeyThrowsFallbackDoesNot) {
  const WireMap m = decode_line("{\"a\":\"x\"}");
  EXPECT_THROW(wire_string(m, "b"), Error);
  EXPECT_EQ(wire_string(m, "b", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(wire_number(m, "b", 7), 7);
}

// ---- admission control -------------------------------------------------

TEST(JobQueue, VerdictOrderAndTenantAccounting) {
  JobQueue::Limits lim;
  lim.maxActive = 1;
  lim.maxQueueDepth = 2;
  lim.maxPerTenant = 3;
  JobQueue q(lim);
  EXPECT_EQ(q.admit(1, "a"), JobQueue::Admission::Admit);
  EXPECT_EQ(q.admit(2, "a"), JobQueue::Admission::Enqueue);
  EXPECT_EQ(q.admit(3, "a"), JobQueue::Admission::Enqueue);
  // Tenant cap fires before the queue-full check.
  EXPECT_EQ(q.admit(4, "a"), JobQueue::Admission::RejectTenantCap);
  // Another tenant is under its cap but the backlog is full.
  EXPECT_EQ(q.admit(5, "b"), JobQueue::Admission::RejectQueueFull);
  EXPECT_EQ(q.active(), 1u);
  EXPECT_EQ(q.queueDepth(), 2u);
  EXPECT_EQ(q.inFlight("a"), 3u);
  EXPECT_EQ(q.inFlight("b"), 0u);

  // No promotion while the active set is full.
  EXPECT_FALSE(q.promote().has_value());
  q.finish("a");
  const auto p = q.promote();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 2u);  // FIFO
  EXPECT_EQ(q.queueDepth(), 1u);
  // Queued jobs still count against their tenant until they finish.
  EXPECT_EQ(q.inFlight("a"), 2u);
}

TEST(JobQueue, RejectsZeroActiveLimit) {
  JobQueue::Limits lim;
  lim.maxActive = 0;
  EXPECT_THROW(JobQueue q(lim), Error);
}

// ---- scheduler ---------------------------------------------------------

TEST(Scheduler, StrictRoundRobin) {
  Scheduler s;
  s.add(1);
  s.add(2);
  s.add(3);
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 6; ++i) {
    const auto id = s.next();
    ASSERT_TRUE(id.has_value());
    order.push_back(*id);
    s.requeue(*id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 1, 2, 3}));
}

TEST(Scheduler, VictimIsNearestTheBack) {
  Scheduler s;
  s.add(1);
  s.add(2);
  s.add(3);
  // The back-most eligible job is picked: it just ran, so it waits the
  // longest until its next turn.
  const auto v1 = s.pickVictim([](std::uint64_t id) { return id != 3; });
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, 2u);
  const auto v2 = s.pickVictim([](std::uint64_t) { return true; });
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 3u);
  EXPECT_FALSE(s.pickVictim([](std::uint64_t) { return false; }).has_value());
  s.remove(2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(*s.next(), 1u);
  EXPECT_EQ(*s.next(), 3u);
}

// ---- protocol: deterministic admission --------------------------------

TEST(Serve, AdmissionVerdictsOverTheProtocol) {
  ScratchDir dir("serve_admission_test");
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.quantumSteps = 4;
  cfg.checkpointDir = dir.path;
  cfg.admission.maxActive = 1;
  cfg.admission.maxQueueDepth = 2;
  cfg.admission.maxPerTenant = 3;
  cfg.startPaused = true;  // verdicts must not depend on worker progress
  Server server(cfg);
  Session& s = server.openSession();

  for (int i = 0; i < 4; ++i)
    s.request(encode_line(submitCavity("acme", 8, 8)));
  s.request(encode_line(submitCavity("other", 8, 8)));

  // Burst verdicts, in submit order.
  std::vector<std::string> got;
  for (int i = 0; i < 5; ++i) {
    const auto line = s.nextEvent();
    ASSERT_TRUE(line.has_value());
    const WireMap ev = decode_line(*line);
    const std::string kind = wire_string(ev, "event");
    got.push_back(kind == "rejected"
                      ? kind + ":" + wire_string(ev, "reason")
                      : kind + ":q" +
                            std::to_string(static_cast<int>(
                                wire_number(ev, "queued"))));
  }
  EXPECT_EQ(got,
            (std::vector<std::string>{"accepted:q0", "accepted:q1",
                                      "accepted:q1", "rejected:tenant_cap",
                                      "rejected:queue_full"}));

  // Released, the three admitted/queued jobs all run to completion.
  server.resume();
  drainUntilFinished(s, 3);
  int done = 0;
  for (const auto& info : server.snapshot())
    done += info.state == JobState::Done;
  EXPECT_EQ(done, 3);
  EXPECT_EQ(server.metrics().counterValue("serve.jobs_done"), 3u);
  EXPECT_EQ(server.metrics().counterValue("serve.rejected.tenant_cap"), 1u);
  EXPECT_EQ(server.metrics().counterValue("serve.rejected.queue_full"), 1u);
  server.shutdown();
  EXPECT_EQ(countCheckpointFiles(dir.path), 0);
}

// ---- evict -> resume bit-identity -------------------------------------

TEST(Serve, EvictResumeIsBitIdentical) {
  ScratchDir dir("serve_evict_test");
  constexpr int kN = 10;
  constexpr std::uint64_t kSteps = 24;
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.quantumSteps = 4;  // 6 quanta per job -> plenty of evictions
  cfg.maxResident = 1;   // two active jobs MUST thrash through eviction
  cfg.checkpointDir = dir.path;
  Server server(cfg);
  Session& s = server.openSession();
  s.request(encode_line(submitCavity("a", kSteps, kN)));
  s.request(encode_line(submitCavity("b", kSteps, kN)));
  const Drained d = drainUntilFinished(s, 2);

  const auto dones = d.ofKind("done");
  ASSERT_EQ(dones.size(), 2u);
  const std::string ref = referenceHash(kN, kSteps);
  for (const auto& ev : dones) {
    EXPECT_EQ(wire_string(ev, "state_hash"), ref);
    EXPECT_DOUBLE_EQ(wire_number(ev, "steps"), kSteps);
  }
  // The identity must have been proven THROUGH eviction traffic, not by
  // two jobs that happened to fit side by side.
  EXPECT_GT(server.metrics().counterValue("serve.evictions"), 0u);
  EXPECT_GT(server.metrics().counterValue("serve.resumes"), 0u);
  EXPECT_FALSE(d.ofKind("evicted").empty());
  EXPECT_FALSE(d.ofKind("resumed").empty());
  server.shutdown();
  EXPECT_EQ(countCheckpointFiles(dir.path), 0);
}

// ---- fault isolation ---------------------------------------------------

TEST(Serve, FaultIsolationOneJobFailsOthersFinish) {
  ScratchDir dir("serve_fault_test");
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.quantumSteps = 4;
  cfg.maxResident = 2;
  cfg.checkpointDir = dir.path;
  cfg.maxRecoveries = 0;  // first fault is fatal for the job
  cfg.beforeQuantum = [](Solver<D3Q19>& s, std::uint64_t id, std::uint64_t) {
    if (id != 1) return;
    const Grid& g = s.grid();
    s.f()(0, g.nx / 2, g.ny / 2, g.nz / 2) =
        std::numeric_limits<Real>::quiet_NaN();
  };
  Server server(cfg);
  Session& s = server.openSession();
  s.request(encode_line(submitCavity("victim", 16)));
  s.request(encode_line(submitCavity("bystander", 16)));
  s.request(encode_line(submitCavity("bystander", 16)));
  const Drained d = drainUntilFinished(s, 3);

  const auto failures = d.ofKind("failed");
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_DOUBLE_EQ(wire_number(failures[0], "job"), 1);
  EXPECT_NE(wire_string(failures[0], "reason").find("guard"),
            std::string::npos);
  EXPECT_EQ(d.ofKind("done").size(), 2u);
  EXPECT_EQ(server.metrics().counterValue("serve.jobs_failed"), 1u);
  EXPECT_EQ(server.metrics().counterValue("serve.jobs_done"), 2u);
  // The daemon survived: it still answers and admits new work.
  EXPECT_FALSE(server.shuttingDown());
  s.request(encode_line(submitCavity("late", 4)));
  drainUntilFinished(s, 1);
  server.shutdown();
  EXPECT_EQ(countCheckpointFiles(dir.path), 0);
}

TEST(Serve, FaultRecoveryRollsBackAndStaysBitIdentical) {
  ScratchDir dir("serve_recovery_test");
  constexpr int kN = 10;
  constexpr std::uint64_t kSteps = 24;
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.quantumSteps = 4;
  cfg.maxResident = 2;
  cfg.checkpointDir = dir.path;
  cfg.checkpointQuanta = 1;  // every quantum leaves a rollback point
  cfg.maxRecoveries = 2;
  // Poison job 1 exactly once, on its fourth quantum (12 steps done).
  std::set<std::uint64_t> poisoned;
  cfg.beforeQuantum = [&poisoned](Solver<D3Q19>& s, std::uint64_t id,
                                  std::uint64_t stepsDone) {
    if (id != 1 || stepsDone != 12 || !poisoned.insert(id).second) return;
    const Grid& g = s.grid();
    s.f()(0, g.nx / 2, g.ny / 2, g.nz / 2) =
        std::numeric_limits<Real>::quiet_NaN();
  };
  Server server(cfg);
  Session& s = server.openSession();
  s.request(encode_line(submitCavity("a", kSteps, kN)));
  const Drained d = drainUntilFinished(s, 1);

  const auto rollbacks = d.ofKind("rollback");
  ASSERT_EQ(rollbacks.size(), 1u);
  EXPECT_DOUBLE_EQ(wire_number(rollbacks[0], "to_step"), 12);
  const auto dones = d.ofKind("done");
  ASSERT_EQ(dones.size(), 1u);
  // The rolled-back rerun lands on the exact same final state.
  EXPECT_EQ(wire_string(dones[0], "state_hash"), referenceHash(kN, kSteps));
  EXPECT_EQ(server.metrics().counterValue("serve.faults"), 1u);
  EXPECT_EQ(server.metrics().counterValue("serve.rollbacks"), 1u);
  server.shutdown();
  EXPECT_EQ(countCheckpointFiles(dir.path), 0);
}

// ---- shutdown hygiene --------------------------------------------------

TEST(Serve, MidRunShutdownLeavesNoCheckpointDebris) {
  ScratchDir dir("serve_debris_test");
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.quantumSteps = 2;
  cfg.maxResident = 1;  // forces eviction checkpoints onto disk
  cfg.checkpointDir = dir.path;
  cfg.checkpointQuanta = 1;
  {
    Server server(cfg);
    Session& s = server.openSession();
    for (int i = 0; i < 3; ++i)
      s.request(encode_line(submitCavity("t" + std::to_string(i), 1000)));
    // Wait until checkpoint files actually exist, then abort mid-run.
    for (int spin = 0; spin < 2000 && countCheckpointFiles(dir.path) == 0;
         ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(countCheckpointFiles(dir.path), 0);
    server.shutdown();
    EXPECT_EQ(countCheckpointFiles(dir.path), 0);
  }  // destructor-run shutdown must be an idempotent no-op
  EXPECT_EQ(countCheckpointFiles(dir.path), 0);
}

// ---- observability ----------------------------------------------------

TEST(Serve, StatusStatsAndTenantAccounting) {
  ScratchDir dir("serve_obs_test");
  obs::MetricsRegistry reg;
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.quantumSteps = 4;
  cfg.checkpointDir = dir.path;
  cfg.metrics = &reg;
  Server server(cfg);
  Session& s = server.openSession();
  s.request(encode_line(submitCavity("acme", 8)));
  s.request(encode_line(submitCavity("acme", 8)));
  drainUntilFinished(s, 2);

  // status reflects the finished job.
  s.request("{\"op\":\"status\",\"job\":1}");
  const auto line = s.nextEvent();
  ASSERT_TRUE(line.has_value());
  const WireMap st = decode_line(*line);
  EXPECT_EQ(wire_string(st, "event"), "status");
  EXPECT_EQ(wire_string(st, "state"), "done");
  EXPECT_EQ(wire_string(st, "tenant"), "acme");
  EXPECT_DOUBLE_EQ(wire_number(st, "steps"), 8);

  // stats exposes the serve.* counters over the wire.
  s.request("{\"op\":\"stats\"}");
  const auto statsLine = s.nextEvent();
  ASSERT_TRUE(statsLine.has_value());
  const WireMap stats = decode_line(*statsLine);
  EXPECT_DOUBLE_EQ(wire_number(stats, "serve.jobs_done"), 2);

  // Per-tenant accounting flowed through the scoped registry view.
  EXPECT_EQ(reg.counterValue("serve.tenant.acme.submitted"), 2u);
  EXPECT_EQ(reg.counterValue("serve.tenant.acme.jobs_done"), 2u);
  EXPECT_GT(reg.counterValue("serve.tenant.acme.steps"), 0u);
  // Time-to-first-step was recorded for both jobs.
  EXPECT_EQ(reg.histogramSummary("serve.ttfs_seconds").count, 2u);

  // Unknown ops and bad lines answer with an error event, not a crash.
  s.request("{\"op\":\"frobnicate\"}");
  const auto err1 = s.nextEvent();
  ASSERT_TRUE(err1.has_value());
  EXPECT_EQ(wire_string(decode_line(*err1), "event"), "error");
  s.request("this is not a protocol line");
  const auto err2 = s.nextEvent();
  ASSERT_TRUE(err2.has_value());
  EXPECT_EQ(wire_string(decode_line(*err2), "event"), "error");
  server.shutdown();
}

// ---- priorities --------------------------------------------------------

TEST(Serve, PriorityScalesQuantumNotTurnOrder) {
  ScratchDir dir("serve_priority_test");
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.quantumSteps = 2;
  cfg.maxResident = 2;
  cfg.checkpointDir = dir.path;
  cfg.startPaused = true;
  Server server(cfg);
  Session& s = server.openSession();
  s.request(encode_line(submitCavity("lo", 16, 10, 1)));
  s.request(encode_line(submitCavity("hi", 16, 10, 4)));
  server.resume();
  drainUntilFinished(s, 2);
  std::uint64_t quantaLo = 0, quantaHi = 0;
  for (const auto& info : server.snapshot()) {
    if (info.tenant == "lo") quantaLo = info.quantaDone;
    if (info.tenant == "hi") quantaHi = info.quantaDone;
  }
  // 16 steps at 2/turn -> 8 quanta; at 8/turn -> 2 quanta.  The high
  // priority job needs fewer turns, the low one still got all of its own.
  EXPECT_EQ(quantaLo, 8u);
  EXPECT_EQ(quantaHi, 2u);
  server.shutdown();
}
