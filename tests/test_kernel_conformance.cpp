// Conformance suite for every stream/collide variant (DESIGN.md §11):
// bit-identity to the fused pull kernel at f64, bit-identity at the same
// reduced storage, quantization-bounded agreement across storage types,
// mass conservation, bounce-back rest states and multithreaded sweep
// parity — over odd extents, all boundary mask patterns and both D2Q9 and
// D3Q19.  tests/kernel_conformance.hpp holds the reusable harness so
// future backends can run the same contract.
#include "kernel_conformance.hpp"

#include <vector>

namespace swlb {
namespace {

using conformance::Scenario;
using conformance::expectEquivalent;
using conformance::expectMassConserved;
using conformance::initSmooth;
using conformance::makeSolver;
using conformance::runLockstep;

std::vector<Scenario> scenarios(bool twoD) {
  std::vector<Scenario> out;
  const int nz = twoD ? 1 : 3;
  const Periodicity perAll{true, true, !twoD};
  const Periodicity perYZ{false, true, !twoD};
  out.push_back({"all_fluid_periodic", {7, 5, nz}, perAll, nullptr, false});
  out.push_back({"solid_obstacle", {9, 7, nz}, perAll,
                 [](MaskField& mask, MaterialTable&, const Grid& g) {
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 2; y < 5; ++y)
                       for (int x = 3; x < 6; ++x)
                         mask(x, y, z) = MaterialTable::kSolid;
                 },
                 false});
  out.push_back({"moving_lid", {7, 5, nz}, Periodicity{false, false, false},
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto lid = mats.addMovingWall({0.05, 0, 0});
                   for (int z = 0; z < g.nz; ++z)
                     for (int x = 0; x < g.nx; ++x)
                       mask(x, g.ny - 1, z) = lid;
                 },
                 false});
  out.push_back({"zouhe_channel", {11, 5, nz}, perYZ,
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto in = mats.addZouHeVelocity({0.03, 0, 0}, {1, 0, 0});
                   const auto outP = mats.addZouHePressure(1.0, {-1, 0, 0});
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 0; y < g.ny; ++y) {
                       mask(0, y, z) = in;
                       mask(g.nx - 1, y, z) = outP;
                     }
                 },
                 false});
  out.push_back({"porous_block", {7, 5, nz}, perAll,
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto por = mats.addPorous(0.4);
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 1; y < 4; ++y)
                       for (int x = 2; x < 5; ++x) mask(x, y, z) = por;
                 },
                 false});
  out.push_back({"inlet_outflow", {9, 5, nz}, perYZ,
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto in = mats.addVelocityInlet({0.04, 0, 0});
                   const auto outF = mats.addOutflow({-1, 0, 0});
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 0; y < g.ny; ++y) {
                       mask(0, y, z) = in;
                       mask(g.nx - 1, y, z) = outF;
                     }
                 },
                 true});
  out.push_back({"mixed_walls", {9, 7, nz}, Periodicity{true, false, !twoD},
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto lid = mats.addMovingWall({0.04, 0, 0});
                   const auto por = mats.addPorous(0.25);
                   for (int z = 0; z < g.nz; ++z)
                     for (int x = 0; x < g.nx; ++x)
                       mask(x, g.ny - 1, z) = lid;
                   for (int z = 0; z < g.nz; ++z)
                     for (int x = 2; x < 4; ++x) {
                       mask(x, 2, z) = MaterialTable::kSolid;
                       if (g.ny > 4) mask(x, 4, z) = por;
                     }
                 },
                 false});
  return out;
}

constexpr int kSteps = 6;  // even: Esoteric ends in natural layout

// Push is absent: it collides before streaming, so after N steps its
// populations sit a half-update away from the pull family's — the same
// physics, but not a step-synchronous trajectory.  It is covered by the
// invariant tests below instead (test_kernels.cpp likewise checks it via
// conservation only).
const KernelVariant kTwoLattice[] = {KernelVariant::Generic,
                                     KernelVariant::Simd,
                                     KernelVariant::TwoStep};

// ---- f64 bit-identity: every variant, every scenario, both lattices ----

TEST(KernelConformance, BitIdentityF64_D3Q19) {
  for (const Scenario& sc : scenarios(false)) {
    for (KernelVariant v : kTwoLattice)
      runLockstep<D3Q19, double, double>(sc, v, kSteps, 0);
    if (!sc.hasOutflow)
      runLockstep<D3Q19, double, double>(sc, KernelVariant::Esoteric, kSteps,
                                         0);
  }
}

TEST(KernelConformance, BitIdentityF64_D2Q9) {
  for (const Scenario& sc : scenarios(true)) {
    for (KernelVariant v : kTwoLattice)
      runLockstep<D2Q9, double, double>(sc, v, kSteps, 0);
    if (!sc.hasOutflow)
      runLockstep<D2Q9, double, double>(sc, KernelVariant::Esoteric, kSteps,
                                        0);
  }
}

// ---- same reduced storage: still bit-identical -------------------------
// The variants execute identical Real expression trees between decode and
// encode, so equal storage types must agree exactly, not approximately.

TEST(KernelConformance, BitIdentitySameStorageF32) {
  for (const Scenario& sc : scenarios(false)) {
    runLockstep<D3Q19, float, float>(sc, KernelVariant::Generic, kSteps, 0);
    runLockstep<D3Q19, float, float>(sc, KernelVariant::Simd, kSteps, 0);
    if (!sc.hasOutflow)
      runLockstep<D3Q19, float, float>(sc, KernelVariant::Esoteric, kSteps, 0);
  }
}

TEST(KernelConformance, BitIdentitySameStorageF16) {
  for (const Scenario& sc : scenarios(false)) {
    runLockstep<D3Q19, f16, f16>(sc, KernelVariant::Simd, kSteps, 0);
    if (!sc.hasOutflow)
      runLockstep<D3Q19, f16, f16>(sc, KernelVariant::Esoteric, kSteps, 0);
  }
}

// ---- reduced storage vs f64: quantization-bounded ----------------------
// Each step encodes once; the stored DDF-shifted deviations are O(0.1), so
// a per-step error of ~kEpsilon compounds roughly linearly over kSteps.
// The bound uses a generous constant — it must catch scheme bugs (O(1)
// errors), not pin the exact rounding.

TEST(KernelConformance, QuantizationBoundF32) {
  const double tol = 64.0 * StorageTraits<float>::kEpsilon * kSteps;
  for (const Scenario& sc : scenarios(false)) {
    runLockstep<D3Q19, double, float>(sc, KernelVariant::Simd, kSteps, tol);
    if (!sc.hasOutflow)
      runLockstep<D3Q19, double, float>(sc, KernelVariant::Esoteric, kSteps,
                                        tol);
  }
}

TEST(KernelConformance, QuantizationBoundF16) {
  const double tol = 64.0 * StorageTraits<f16>::kEpsilon * kSteps;
  for (const Scenario& sc : scenarios(false)) {
    runLockstep<D3Q19, double, f16>(sc, KernelVariant::Simd, kSteps, tol);
    if (!sc.hasOutflow)
      runLockstep<D3Q19, double, f16>(sc, KernelVariant::Esoteric, kSteps,
                                      tol);
  }
}

// ---- invariants --------------------------------------------------------

TEST(KernelConformance, MassConservedClosedBox) {
  // Closed box (non-periodic => solid halo walls) with an obstacle, odd
  // extents; 7 steps so the esoteric solver is probed at an odd phase.
  Scenario closed{"closed_box", {7, 5, 3}, Periodicity{false, false, false},
                  [](MaskField& mask, MaterialTable&, const Grid& g) {
                    for (int z = 0; z < g.nz; ++z)
                      mask(3, 2, z) = MaterialTable::kSolid;
                  },
                  false};
  for (KernelVariant v :
       {KernelVariant::Fused, KernelVariant::Simd, KernelVariant::Esoteric,
        KernelVariant::Push})
    expectMassConserved<D3Q19, double>(closed, v, 7);
}

TEST(KernelConformance, RestStateFixedPoint) {
  // Uniform equilibrium at rest next to plain walls is a fixed point up
  // to f64 rounding of the moment sums (the weight sums are not exact in
  // binary, so bitwise invariance is too strong — but any streaming or
  // bounce-back defect shows up as an O(f) error, 12+ orders larger).
  Scenario box{"rest_box", {5, 5, 3}, Periodicity{false, false, false},
               nullptr, false};
  for (KernelVariant v : {KernelVariant::Simd, KernelVariant::Esoteric}) {
    Solver<D3Q19, double> s = makeSolver<D3Q19, double>(box);
    s.setVariant(v);
    s.finalizeMask();
    s.initUniform(1.0, {0, 0, 0});
    Real feq[D3Q19::Q];
    equilibria<D3Q19>(1.0, {0, 0, 0}, feq);
    s.run(4);
    for (int z = 0; z < 3; ++z)
      for (int y = 0; y < 5; ++y)
        for (int x = 0; x < 5; ++x)
          for (int i = 0; i < D3Q19::Q; ++i)
            ASSERT_NEAR(s.population(i, x, y, z), feq[i], 5e-14)
                << kernel_variant_name(v) << " at i=" << i << " (" << x << ","
                << y << "," << z << ")";
  }
}

TEST(KernelConformance, ThreadCountParity) {
  // The mt drivers split z-slabs; any thread count must be bit-identical
  // (fused already guarantees this; Simd and Esoteric inherit the claim).
  for (int threads : {2, 3}) {
    for (KernelVariant v : {KernelVariant::Simd, KernelVariant::Esoteric}) {
      Scenario sc = scenarios(false)[1];  // solid_obstacle
      Solver<D3Q19, double> a = makeSolver<D3Q19, double>(sc);
      Solver<D3Q19, double> b = makeSolver<D3Q19, double>(sc);
      a.setVariant(v);
      b.setVariant(v);
      b.setHostThreads(threads);
      a.finalizeMask();
      b.finalizeMask();
      initSmooth(a);
      initSmooth(b);
      for (int s = 0; s < 4; ++s) {
        a.step();
        b.step();
      }
      expectEquivalent<D3Q19>(a, b, 0,
                              std::string(kernel_variant_name(v)) + " mt=" +
                                  std::to_string(threads));
    }
  }
}

// ---- registry-driven coverage ------------------------------------------
// Everything registered for a (lattice, storage) pair is held to exactly
// what its capability flags promise; a backend added to the registry is
// covered with no test edits, and one whose flags overpromise fails here.
// This sweep is what pins "threads" and "swcpe" — the hand-written lists
// above predate the registry and keep the narrow bounds documented.

TEST(KernelConformance, RegisteredBackendsConformD3Q19) {
  for (const Scenario& sc : scenarios(false))
    conformance::runRegisteredBackends<D3Q19, double>(sc, kSteps);
}

TEST(KernelConformance, RegisteredBackendsConformD2Q9) {
  for (const Scenario& sc : scenarios(true))
    conformance::runRegisteredBackends<D2Q9, double>(sc, kSteps);
}

TEST(KernelConformance, ThreadsBackendBitIdenticalAtAnyTeamSize) {
  // The thread-team backend splits the same z-slabs as the fused mt
  // driver, so every team size — serial fallback (1), a small team (2),
  // and one lane per hardware core (0 resolves to hardware_concurrency)
  // — must be bit-identical to single-thread fused.
  for (int threads : {1, 2, 0}) {
    for (const Scenario& sc : scenarios(false)) {
      SCOPED_TRACE("team=" + std::to_string(threads));
      Solver<D3Q19, double> ref = makeSolver<D3Q19, double>(sc);
      Solver<D3Q19, double> sut = makeSolver<D3Q19, double>(sc);
      sut.setBackend("threads");
      sut.setHostThreads(threads);
      ref.finalizeMask();
      sut.finalizeMask();
      initSmooth(ref);
      initSmooth(sut);
      for (int s = 0; s < 4; ++s) {
        ref.step();
        sut.step();
      }
      expectEquivalent<D3Q19>(ref, sut, 0,
                              sc.name + "/threads team=" +
                                  std::to_string(threads));
    }
  }
}

// ---- explicit capability rejection (no silent fallbacks) ---------------

TEST(KernelConformance, UnknownBackendNameThrowsWithRegisteredList) {
  Scenario sc = scenarios(false)[0];
  Solver<D3Q19, double> s = makeSolver<D3Q19, double>(sc);
  try {
    s.setBackend("warp");
    FAIL() << "expected Error for unknown backend name";
  } catch (const Error& e) {
    // The message must enumerate what IS registered so the caller can fix
    // a typo without reading source.
    EXPECT_NE(std::string(e.what()).find("fused"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("warp"), std::string::npos);
  }
}

TEST(KernelConformance, SwCpeNotRegisteredForWideLattices) {
  // The CPE emulator only instantiates for the paper's lattices
  // (D2Q9/D3Q19); asking for it on D3Q15 must be an explicit refusal,
  // not a silent fall-back to another kernel.
  const Grid g(5, 5, 3);
  CollisionConfig cc;
  cc.omega = 1.7;
  Solver<D3Q15, double> s(g, cc, Periodicity{true, true, true});
  EXPECT_THROW(s.setBackend("swcpe"), Error);
  EXPECT_TRUE((BackendRegistry<D3Q19, double>::instance().has("swcpe")));
  EXPECT_FALSE((BackendRegistry<D3Q15, double>::instance().has("swcpe")));
}

TEST(KernelConformance, CatalogAndRegistryAgree) {
  // Every registered backend has a catalog row (name, summary, caps) and
  // vice versa for the lattices it claims; find_backend_info is how docs
  // and the tuner reason about capabilities, so the two must not drift.
  for (const std::string& name : backend_names<D3Q19, double>()) {
    const BackendInfo* info = find_backend_info(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->summary.empty()) << name;
    auto b = make_backend<D3Q19, double>(name);
    EXPECT_EQ(b->info().name, name);
  }
}

TEST(KernelConformance, EsotericRejectsOutflow) {
  Scenario sc = scenarios(false)[5];  // inlet_outflow
  Solver<D3Q19, double> s = makeSolver<D3Q19, double>(sc);
  s.setVariant(KernelVariant::Esoteric);
  EXPECT_THROW(s.finalizeMask(), Error);
}

TEST(KernelConformance, EsotericHalvesPopulationMemory) {
  Scenario sc = scenarios(false)[0];
  Solver<D3Q19, double> two = makeSolver<D3Q19, double>(sc);
  Solver<D3Q19, double> one = makeSolver<D3Q19, double>(sc);
  one.setVariant(KernelVariant::Esoteric);
  EXPECT_EQ(one.populationBytes() * 2, two.populationBytes());
}

}  // namespace
}  // namespace swlb
