// Physical validation of the solver against analytic solutions:
// Couette, Poiseuille (body-force channel), Taylor-Green vortex decay.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/observables.hpp"
#include "core/solver.hpp"

namespace swlb {
namespace {

// ---------------------------------------------------------------- Couette

TEST(Couette, LinearProfileUnderMovingLid) {
  // Channel periodic in x (and z collapsed to 1 cell periodic), walls in y:
  // bottom solid, top moving with u_w.  Steady state is linear shear.
  const int nx = 4, ny = 24;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  const Real uw = 0.05;
  const auto lid = solver.materials().addMovingWall({uw, 0, 0});
  solver.paint({{0, ny - 1, 0}, {nx, ny, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(8000);

  // Half-way bounce-back: wall plane sits half a cell outside the fluid.
  // Fluid rows are y = 0 .. ny-2 (row ny-1 is the lid cells).
  // u(y) = uw * (y + 0.5) / (ny - 1)
  for (int y = 0; y < ny - 1; ++y) {
    const Real expected = uw * (y + 0.5) / (ny - 1);
    const Real got = solver.velocity(1, y, 0).x;
    EXPECT_NEAR(got, expected, 0.015 * uw) << "row " << y;
  }
}

// -------------------------------------------------------------- Poiseuille

TEST(Poiseuille, ParabolicProfileUnderBodyForce) {
  const int nx = 4, ny = 32;
  const Real nu = 1.0 / 6.0;  // tau = 1
  const Real g = 1e-6;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  cfg.bodyForce = {g, 0, 0};
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  solver.finalizeMask();  // default: solid walls top/bottom
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(12000);

  // Walls at y = -0.5 and y = ny - 0.5  =>  H = ny.
  // u(y) = g/(2 nu) (y + 0.5)(H - y - 0.5)
  const Real H = ny;
  Real maxErr = 0, maxU = 0;
  for (int y = 0; y < ny; ++y) {
    const Real yw = y + 0.5;
    const Real expected = g / (2 * nu) * yw * (H - yw);
    const Real got = solver.velocity(2, y, 0).x;
    maxErr = std::max(maxErr, std::abs(got - expected));
    maxU = std::max(maxU, expected);
  }
  EXPECT_LT(maxErr / maxU, 0.01);
}

TEST(Poiseuille, FlowIsTranslationInvariantAlongChannel) {
  const int nx = 6, ny = 16;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  cfg.bodyForce = {5e-7, 0, 0};
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(4000);
  for (int y = 0; y < ny; ++y) {
    const Real ref = solver.velocity(0, y, 0).x;
    for (int x = 1; x < nx; ++x)
      EXPECT_NEAR(solver.velocity(x, y, 0).x, ref, 1e-12);
  }
}

TEST(Poiseuille3D, ParabolicProfileWithD3Q19) {
  const int nx = 4, ny = 24, nz = 4;
  const Real nu = 1.0 / 6.0;
  const Real g = 1e-6;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  cfg.bodyForce = {g, 0, 0};
  // Periodic in x and z, walls in y: a planar channel.
  Solver<D3Q19> solver(Grid(nx, ny, nz), cfg, Periodicity{true, false, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(8000);

  const Real H = ny;
  Real maxErr = 0, maxU = 0;
  for (int y = 0; y < ny; ++y) {
    const Real yw = y + 0.5;
    const Real expected = g / (2 * nu) * yw * (H - yw);
    const Real got = solver.velocity(1, y, 1).x;
    maxErr = std::max(maxErr, std::abs(got - expected));
    maxU = std::max(maxU, expected);
  }
  EXPECT_LT(maxErr / maxU, 0.01);
}

// ------------------------------------------------------------ Taylor-Green

struct TgvParams {
  KernelVariant variant;
  const char* label;
};

class TaylorGreenTest : public ::testing::TestWithParam<TgvParams> {};

TEST_P(TaylorGreenTest, ViscousDecayMatchesAnalytic) {
  // 2-D Taylor-Green vortex on a fully periodic box decays as
  // u(t) = u0 exp(-2 nu k^2 t); every kernel variant must reproduce it.
  const int n = 32;
  const Real nu = 0.02;
  const Real u0 = 0.02;
  const Real k = 2 * std::numbers::pi / n;

  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  Solver<D2Q9> solver(Grid(n, n, 1), cfg, Periodicity{true, true, true});
  solver.setVariant(GetParam().variant);
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    u.x = -u0 * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
    u.y = u0 * std::sin(k * (x + 0.5)) * std::cos(k * (y + 0.5));
    u.z = 0;
    rho = 1.0 - u0 * u0 * 3.0 / 4.0 *
                    (std::cos(2 * k * (x + 0.5)) + std::cos(2 * k * (y + 0.5)));
  });

  const int steps = 400;
  solver.run(steps);
  const Real decay = std::exp(-2 * nu * k * k * steps);

  Real maxErr = 0;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      const Real ex = -u0 * decay * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
      const Real ey = u0 * decay * std::sin(k * (x + 0.5)) * std::cos(k * (y + 0.5));
      const Vec3 got = solver.velocity(x, y, 0);
      maxErr = std::max({maxErr, std::abs(got.x - ex), std::abs(got.y - ey)});
    }
  EXPECT_LT(maxErr / u0, 0.02) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelVariants, TaylorGreenTest,
    ::testing::Values(TgvParams{KernelVariant::Fused, "fused"},
                      TgvParams{KernelVariant::Generic, "generic"},
                      TgvParams{KernelVariant::TwoStep, "two-step"},
                      TgvParams{KernelVariant::Push, "push"}),
    [](const ::testing::TestParamInfo<TgvParams>& info) {
      return std::string(info.param.label) == "two-step" ? "TwoStep"
             : info.param.label == std::string("fused")  ? "Fused"
             : info.param.label == std::string("push")   ? "Push"
                                                          : "Generic";
    });

TEST(TaylorGreen3D, DecayRateWithD3Q19) {
  const int n = 16;
  const Real nu = 0.05;
  const Real u0 = 0.01;
  const Real k = 2 * std::numbers::pi / n;

  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  Solver<D3Q19> solver(Grid(n, n, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    u.x = -u0 * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
    u.y = u0 * std::sin(k * (x + 0.5)) * std::cos(k * (y + 0.5));
    rho = 1.0;
  });

  // Measure the decay rate from total kinetic energy: E ~ exp(-4 nu k^2 t).
  auto energy = [&] {
    ScalarField rho(solver.grid());
    VectorField u(solver.grid());
    solver.computeMacroscopic(rho, u);
    return kinetic_energy(rho, u, solver.mask(), solver.materials());
  };
  const Real e0 = energy();
  const int steps = 200;
  solver.run(steps);
  const Real e1 = energy();
  const Real measured = -std::log(e1 / e0) / steps;
  const Real expected = 4 * nu * k * k;
  EXPECT_NEAR(measured, expected, 0.05 * expected);
}

}  // namespace
}  // namespace swlb
