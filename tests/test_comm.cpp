// Message-passing runtime: point-to-point, non-blocking ops, collectives.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "coll/coll.hpp"
#include "runtime/comm.hpp"

namespace swlb::runtime {
namespace {

TEST(Comm, SendRecvPairwise) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      const int v = 42;
      c.sendValue(1, 0, v);
    } else {
      EXPECT_EQ(c.recvValue<int>(0, 0), 42);
    }
  });
}

TEST(Comm, MessagesMatchByTag) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, /*tag=*/7, 700);
      c.sendValue(1, /*tag=*/3, 300);
    } else {
      // Receive in the opposite order of sending: tags must match.
      EXPECT_EQ(c.recvValue<int>(0, 3), 300);
      EXPECT_EQ(c.recvValue<int>(0, 7), 700);
    }
  });
}

TEST(Comm, FifoOrderPerSourceAndTag) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.sendValue(1, 0, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recvValue<int>(0, 0), i);
    }
  });
}

TEST(Comm, AnySourceReceivesFromWhoeverSent) {
  World world(3);
  world.run([](Comm& c) {
    if (c.rank() != 0) {
      c.sendValue(0, 5, c.rank());
    } else {
      int sum = 0;
      sum += c.recvValue<int>(kAnySource, 5);
      sum += c.recvValue<int>(kAnySource, 5);
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Comm, SelfMessagesWork) {
  // Wrapped periodic axes with a 1-wide process grid send to self.
  World world(1);
  world.run([](Comm& c) {
    c.sendValue(0, 1, 3.5);
    EXPECT_EQ(c.recvValue<double>(0, 1), 3.5);
  });
}

TEST(Comm, IsendIrecvRoundTrip) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<double> buf(64);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      Request r = c.isend(1, 2, buf.data(), buf.size() * sizeof(double));
      r.wait();  // must be a no-op for eager sends
    } else {
      Request r = c.irecv(0, 2, buf.data(), buf.size() * sizeof(double));
      r.wait();
      for (int i = 0; i < 64; ++i) EXPECT_EQ(buf[i], i);
    }
  });
}

TEST(Comm, IrecvTestPollsWithoutBlocking) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
      c.sendValue(1, 9, 1);
    } else {
      int v = 0;
      Request r = c.irecv(0, 9, &v, sizeof(v));
      EXPECT_FALSE(r.test());  // nothing sent yet
      c.barrier();
      r.wait();
      EXPECT_EQ(v, 1);
      EXPECT_TRUE(r.test());
    }
  });
}

TEST(Comm, SizeMismatchThrows) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::int32_t v = 1;
      c.send(1, 0, &v, sizeof(v));
    } else {
      std::int64_t v;
      c.recv(0, 0, &v, sizeof(v));
    }
  }),
               Error);
}

TEST(Comm, BarrierSynchronizesPhases) {
  const int ranks = 4;
  World world(ranks);
  std::atomic<int> phase1{0};
  world.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    // After the barrier every rank must observe all increments.
    EXPECT_EQ(phase1.load(), ranks);
    c.barrier();
  });
}

TEST(Comm, AllreduceSumMinMax) {
  World world(4);
  world.run([](Comm& c) {
    const double v = c.rank() + 1;  // 1..4
    EXPECT_EQ(c.allreduce(v, Comm::Op::Sum), 10.0);
    EXPECT_EQ(c.allreduce(v, Comm::Op::Min), 1.0);
    EXPECT_EQ(c.allreduce(v, Comm::Op::Max), 4.0);
  });
}

TEST(Comm, BackToBackAllreducesDoNotInterfere) {
  World world(3);
  world.run([](Comm& c) {
    for (int round = 0; round < 50; ++round) {
      const double expect = 3.0 * round;
      EXPECT_EQ(c.allreduce(round, Comm::Op::Sum), expect);
    }
  });
}

TEST(Comm, GatherCollectsRankOrder) {
  World world(4);
  world.run([](Comm& c) {
    const std::int32_t mine = 100 + c.rank();
    std::vector<std::int32_t> all(4, -1);
    c.gather(0, &mine, sizeof(mine), c.rank() == 0 ? all.data() : nullptr);
    if (c.rank() == 0) {
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], 100 + r);
    }
  });
}

TEST(Comm, BroadcastDistributesFromRoot) {
  World world(4);
  world.run([](Comm& c) {
    double v = c.rank() == 2 ? 3.14 : 0.0;
    c.broadcast(2, &v, sizeof(v));
    EXPECT_EQ(v, 3.14);
  });
}

TEST(Comm, StatsCountTraffic) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      const double v = 1;
      c.send(1, 0, &v, sizeof(v));
      c.send(1, 0, &v, sizeof(v));
    } else {
      double v;
      c.recv(0, 0, &v, sizeof(v));
      c.recv(0, 0, &v, sizeof(v));
      EXPECT_EQ(c.stats().messagesReceived, 2u);
      EXPECT_EQ(c.stats().bytesReceived, 2 * sizeof(double));
    }
  });
  EXPECT_EQ(world.totalStats().messagesSent, 2u);
  EXPECT_EQ(world.totalStats().bytesSent, 2 * sizeof(double));
}

TEST(Comm, ExceptionsPropagateToRunCaller) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    if (c.rank() == 1) throw Error("rank failure");
    // rank 0 returns normally
  }),
               Error);
}

TEST(Comm, LatencyModelDelaysDelivery) {
  WorldConfig cfg;
  cfg.latency = 0.02;  // 20 ms per message
  World world(2, cfg);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 0, 1);
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      (void)c.recvValue<int>(0, 0);
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_GE(sec, 0.015);
    }
  });
}

TEST(World, RejectsNonPositiveSize) {
  EXPECT_THROW(World(0), Error);
  EXPECT_THROW(World(-3), Error);
}

// ------------------------------------------------- fault injection & timeouts

TEST(CommFaults, DroppedMessageRaisesTimeoutInsteadOfDeadlock) {
  WorldConfig cfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = 5;
  cfg.faults.messageFaults.push_back(drop);
  World world(2, cfg);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 5, 42);  // dropped in transit
    } else {
      int v = 0;
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_THROW(c.recv(0, 5, &v, sizeof(v), /*timeoutSec=*/0.05),
                   TimeoutError);
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_GE(sec, 0.04);  // waited out the deadline...
      EXPECT_LT(sec, 2.0);   // ...but did not hang
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 1u);
}

TEST(CommFaults, DefaultRecvTimeoutAppliesToWaitAndRecv) {
  WorldConfig cfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = 3;
  drop.count = 2;
  cfg.faults.messageFaults.push_back(drop);
  World world(2, cfg);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 3, 1);
      c.sendValue(1, 3, 2);
    } else {
      c.setRecvTimeout(0.05);
      int v = 0;
      EXPECT_THROW(c.recv(0, 3, &v, sizeof(v)), TimeoutError);
      Request r = c.irecv(0, 3, &v, sizeof(v));
      EXPECT_THROW(r.wait(), TimeoutError);
      c.setRecvTimeout(0);
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 2u);
}

TEST(CommFaults, HugeRecvTimeoutNeverFiresSpuriously) {
  // A timeout of 1e18 seconds overflows steady_clock's duration range if
  // added naively; deadlineFrom must clamp it to "no deadline" instead of
  // wrapping into the past (which made every recv fail instantly).
  World world(2);
  world.run([](Comm& c) {
    c.setRecvTimeout(1e18);
    if (c.rank() == 0) {
      c.sendValue(1, 7, 42);
    } else {
      int v = 0;
      EXPECT_NO_THROW(c.recv(0, 7, &v, sizeof(v)));
      EXPECT_EQ(v, 42);
    }
    c.setRecvTimeout(0);
  });
}

TEST(CommFaults, DelayedMessageArrivesLateButCorrect) {
  WorldConfig cfg;
  FaultPlan::MessageFault delay;
  delay.action = FaultPlan::Action::Delay;
  delay.src = 0;
  delay.dst = 1;
  delay.tag = 4;
  delay.delay = 0.03;
  cfg.faults.messageFaults.push_back(delay);
  World world(2, cfg);
  world.run([](Comm& c) {
    // t0 on the receiver is taken before the barrier releases the send,
    // so the measured wait can never undershoot the injected delay even
    // when thread scheduling staggers the ranks (TSan, loaded CI).
    if (c.rank() == 0) {
      c.barrier();
      c.sendValue(1, 4, 77);
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      c.barrier();
      EXPECT_EQ(c.recvValue<int>(0, 4), 77);  // late, not lost
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_GE(sec, 0.025);
    }
  });
  EXPECT_EQ(world.faultStats().delayed, 1u);
}

TEST(CommFaults, CorruptedMessageDetectedByChecksumPath) {
  WorldConfig cfg;
  FaultPlan::MessageFault corrupt;
  corrupt.action = FaultPlan::Action::Corrupt;
  corrupt.src = 0;
  corrupt.dst = 1;
  corrupt.tag = 6;
  corrupt.corruptByte = 3;
  cfg.faults.messageFaults.push_back(corrupt);
  World world(2, cfg);
  world.run([](Comm& c) {
    std::vector<double> buf(16, 1.25);
    if (c.rank() == 0) {
      c.sendChecksummed(1, 6, buf.data(), buf.size() * sizeof(double));
    } else {
      EXPECT_THROW(
          c.recvChecksummed(0, 6, buf.data(), buf.size() * sizeof(double)),
          CorruptionError);
    }
  });
  EXPECT_EQ(world.faultStats().corrupted, 1u);
}

TEST(CommFaults, ChecksummedRoundTripWithoutFaultsIsClean) {
  World world(2);
  world.run([](Comm& c) {
    std::vector<double> buf(32);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.5);
      c.sendChecksummed(1, 8, buf.data(), buf.size() * sizeof(double));
    } else {
      c.recvChecksummed(0, 8, buf.data(), buf.size() * sizeof(double));
      for (int i = 0; i < 32; ++i) EXPECT_EQ(buf[i], i + 0.5);
    }
  });
}

TEST(CommFaults, FaultTickKillsChosenRankOnce) {
  WorldConfig cfg;
  cfg.faults.killRank = 1;
  cfg.faults.killAtStep = 3;
  World world(2, cfg);
  world.run([](Comm& c) {
    int killedAt = -1;
    for (int step = 0; step < 6; ++step) {
      try {
        c.faultTick(step);
      } catch (const RankKilledError& e) {
        killedAt = step;
        EXPECT_EQ(e.rank(), 1);
        EXPECT_EQ(e.step(), 3u);
      }
    }
    if (c.rank() == 1) {
      EXPECT_EQ(killedAt, 3);
      // One-shot: a "respawned" rank replaying the same step survives.
      EXPECT_NO_THROW(c.faultTick(3));
    } else {
      EXPECT_EQ(killedAt, -1);
    }
  });
  EXPECT_EQ(world.faultStats().kills, 1u);
}

TEST(CommFaults, SeededDropsAreReproducible) {
  auto runOnce = [](std::uint64_t seed) {
    WorldConfig cfg;
    FaultPlan::MessageFault drop;
    drop.action = FaultPlan::Action::Drop;
    drop.src = 0;
    drop.dst = 1;
    drop.tag = 0;
    drop.count = std::uint64_t(-1);
    drop.probability = 0.5;
    cfg.faults.messageFaults.push_back(drop);
    cfg.faults.seed = seed;
    World world(2, cfg);
    std::vector<int> received;
    world.run([&](Comm& c) {
      const int n = 40;
      if (c.rank() == 0) {
        for (int i = 0; i < n; ++i) c.sendValue(1, 0, i);
        c.sendValue(1, 1, -1);  // sentinel on an unfaulted tag
      } else {
        (void)c.recvValue<int>(0, 1);  // all tag-0 sends already delivered
        int v;
        while (c.irecv(0, 0, &v, sizeof(v)).test()) received.push_back(v);
      }
    });
    return std::make_pair(received, world.faultStats().dropped);
  };
  const auto [recvA, droppedA] = runOnce(12345);
  const auto [recvB, droppedB] = runOnce(12345);
  EXPECT_EQ(recvA, recvB);  // same seed => identical survivor set
  EXPECT_EQ(droppedA, droppedB);
  EXPECT_GT(droppedA, 0u);
  EXPECT_LT(droppedA, 40u);
  const auto [recvC, droppedC] = runOnce(999);
  EXPECT_TRUE(recvC != recvA || droppedC != droppedA);  // seed matters
}

TEST(CommFaults, LivenessVoteCountsHealthyRanks) {
  World world(4);
  world.run([](Comm& c) {
    EXPECT_EQ(c.livenessVote(true), 4);
    EXPECT_EQ(c.livenessVote(c.rank() != 2), 3);
  });
}

TEST(CommFaults, DrainMailboxDiscardsStaleMessages) {
  World world(2);
  world.run([](Comm& c) {
    if (c.rank() == 0) {
      c.sendValue(1, 0, 1);
      c.sendValue(1, 0, 2);
      c.barrier();
    } else {
      c.barrier();  // both messages are in the mailbox now
      EXPECT_EQ(c.drainMailbox(), 2u);
      int v = 0;
      EXPECT_THROW(c.recv(0, 0, &v, sizeof(v), 0.02), TimeoutError);
    }
  });
}

// Collectives ride on tagged point-to-point traffic, so fault rules can
// target them by their sequence tag: the first collective on a fresh Comm
// uses colltag::encode(0).

TEST(CommFaults, BroadcastDropSurfacesAsTimeout) {
  WorldConfig cfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = colltag::encode(0);
  cfg.faults.messageFaults.push_back(drop);
  World world(2, cfg);
  world.run([](Comm& c) {
    double v = c.rank() == 0 ? 2.5 : 0.0;
    if (c.rank() == 0) {
      c.broadcast(0, &v, sizeof(v));  // root's send is dropped in transit
    } else {
      c.setRecvTimeout(0.05);
      EXPECT_THROW(c.broadcast(0, &v, sizeof(v)), TimeoutError);
      c.setRecvTimeout(0);
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 1u);
}

TEST(CommFaults, GatherDropAtRootTimesOut) {
  WorldConfig cfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 1;
  drop.dst = 0;
  drop.tag = colltag::encode(0);
  cfg.faults.messageFaults.push_back(drop);
  World world(3, cfg);
  world.run([](Comm& c) {
    const std::int32_t mine = 100 + c.rank();
    std::vector<std::int32_t> all(3, -1);
    if (c.rank() == 0) {
      c.setRecvTimeout(0.05);
      EXPECT_THROW(c.gather(0, &mine, sizeof(mine), all.data()),
                   TimeoutError);
      c.setRecvTimeout(0);
    } else {
      c.gather(0, &mine, sizeof(mine), nullptr);  // eager send, no blocking
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 1u);
}

TEST(CommFaults, BroadcastDelayArrivesLateButCorrect) {
  WorldConfig cfg;
  FaultPlan::MessageFault delay;
  delay.action = FaultPlan::Action::Delay;
  delay.src = 0;
  delay.dst = 1;
  // The release barrier below consumes collective sequence 0; the
  // broadcast under test is sequence 1.
  delay.tag = colltag::encode(1);
  delay.delay = 0.03;
  cfg.faults.messageFaults.push_back(delay);
  World world(4, cfg);
  world.run([](Comm& c) {
    double v = c.rank() == 0 ? 6.25 : 0.0;
    // As above: take t0 before the barrier that releases the broadcast so
    // rank scheduling stagger cannot shrink the measured delay.
    const auto t0 = std::chrono::steady_clock::now();
    c.barrier();
    c.broadcast(0, &v, sizeof(v));
    EXPECT_EQ(v, 6.25);  // late on rank 1, never lost
    if (c.rank() == 1) {
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_GE(sec, 0.025);
    }
  });
  EXPECT_EQ(world.faultStats().delayed, 1u);
}

TEST(CommFaults, GatherCorruptionDetectedWithChecksummedCollectives) {
  WorldConfig cfg;
  FaultPlan::MessageFault corrupt;
  corrupt.action = FaultPlan::Action::Corrupt;
  corrupt.src = 1;
  corrupt.dst = 0;
  corrupt.tag = colltag::encode(0);
  corrupt.corruptByte = 2;
  cfg.faults.messageFaults.push_back(corrupt);
  World world(2, cfg);
  world.run([](Comm& c) {
    coll::CollConfig ccfg;
    ccfg.checksummed = true;
    coll::Collectives cs(c, ccfg);
    const std::vector<double> mine(8, 1.0 + c.rank());
    std::vector<double> all(c.rank() == 0 ? 16 : 0);
    if (c.rank() == 0) {
      EXPECT_THROW(cs.gather<double>(0, mine, all), CorruptionError);
    } else {
      cs.gather<double>(0, mine, all);
    }
  });
  EXPECT_EQ(world.faultStats().corrupted, 1u);
}

TEST(CommHealth, ProbeAllAliveDeclaresNobodyDead) {
  World world(3);
  world.run([](Comm& c) {
    HealthConfig hc;
    hc.timeout = 0.5;
    const std::vector<std::uint8_t> alive = c.probeLiveness(hc);
    ASSERT_EQ(alive.size(), 3u);
    for (int r = 0; r < 3; ++r) EXPECT_EQ(alive[static_cast<std::size_t>(r)], 1);
    EXPECT_GE(c.healthStats().probes, 1u);
    EXPECT_EQ(c.healthStats().declaredDead, 0u);
  });
}

TEST(CommHealth, ProbeFindsSilentRankAndShrinkCompactsSurvivors) {
  World world(4);
  std::array<int, 4> newRank{-1, -1, -1, -1};
  world.run([&](Comm& c) {
    if (c.rank() == 1) return;  // silent peer: never answers the probe
    HealthConfig hc;
    hc.timeout = 0.1;
    hc.retries = 2;
    const std::vector<std::uint8_t> alive = c.probeLiveness(hc);
    ASSERT_EQ(alive.size(), 4u);
    EXPECT_EQ(alive[0], 1);
    EXPECT_EQ(alive[1], 0);
    EXPECT_EQ(alive[2], 1);
    EXPECT_EQ(alive[3], 1);
    EXPECT_GE(c.healthStats().suspected, 1u);
    EXPECT_GE(c.healthStats().declaredDead, 1u);

    const int wr = c.worldRank();
    const int nr = c.shrink(alive);
    newRank[static_cast<std::size_t>(wr)] = nr;
    EXPECT_EQ(c.size(), 3);
    EXPECT_EQ(c.rank(), nr);
    EXPECT_EQ(c.worldRank(), wr);  // world identity survives reranking

    // The compacted communicator works end to end: collectives and
    // point-to-point traffic on the new dense numbering.
    EXPECT_EQ(c.allreduce(1.0, Comm::Op::Sum), 3.0);
    if (nr == 0) c.sendValue(2, 5, wr);
    if (nr == 2) {
      EXPECT_EQ(c.recvValue<int>(0, 5), 0);
    }
    c.barrier();
  });
  EXPECT_EQ(newRank[0], 0);
  EXPECT_EQ(newRank[1], -1);
  EXPECT_EQ(newRank[2], 1);
  EXPECT_EQ(newRank[3], 2);
}

TEST(CommHealth, ShrinkOnFullyAliveWorldIsIdentity) {
  World world(2);
  world.run([](Comm& c) {
    const std::vector<std::uint8_t> alive(2, 1);
    EXPECT_EQ(c.shrink(alive), c.rank());
    EXPECT_EQ(c.size(), 2);
    EXPECT_EQ(c.allreduce(1.0, Comm::Op::Sum), 2.0);
  });
}

TEST(CommFaults, FaultRollIsDeterministic) {
  const double a = fault_roll(7, 0, 1, 3, 10);
  const double b = fault_roll(7, 0, 1, 3, 10);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  EXPECT_NE(fault_roll(8, 0, 1, 3, 10), a);
}

}  // namespace
}  // namespace swlb::runtime
