// The CPE-blocked kernel must be bit-identical to the reference kernel,
// respect LDM capacity, and its metered traffic must reflect the paper's
// optimization claims (blocking, reuse, sharing).
#include <gtest/gtest.h>

#include <random>

#include "core/kernels.hpp"
#include "core/macroscopic.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb::sw {
namespace {

using D = D3Q19;

struct SwEnv {
  Grid grid;
  PopulationField src, dst, ref;
  MaskField mask;
  MaterialTable mats;
  CollisionConfig col;
  Periodicity per{true, true, true};

  explicit SwEnv(int nx = 20, int ny = 16, int nz = 8)
      : grid(nx, ny, nz),
        src(grid, D::Q),
        dst(grid, D::Q),
        ref(grid, D::Q),
        mask(grid, MaterialTable::kFluid) {
    col.omega = 1.5;
  }

  void addObstacleAndInlet() {
    const auto inlet = mats.addVelocityInlet({0.03, 0, 0});
    const auto out = mats.addOutflow({-1, 0, 0});
    per = {false, true, true};
    for (int z = 0; z < grid.nz; ++z)
      for (int y = 0; y < grid.ny; ++y) {
        mask(0, y, z) = inlet;
        mask(grid.nx - 1, y, z) = out;
      }
    for (int z = 2; z < 5; ++z)
      for (int y = 5; y < 9; ++y)
        for (int x = 6; x < 10; ++x) mask(x, y, z) = MaterialTable::kSolid;
  }

  void finalize(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<Real> dist(-0.02, 0.02);
    for (int z = -1; z <= grid.nz; ++z)
      for (int y = -1; y <= grid.ny; ++y)
        for (int x = -1; x <= grid.nx; ++x) {
          Real feq[D::Q];
          equilibria<D>(1.0 + dist(rng), {dist(rng), dist(rng), dist(rng)}, feq);
          for (int i = 0; i < D::Q; ++i) src(i, x, y, z) = feq[i];
        }
    fill_halo_mask(mask, per, MaterialTable::kSolid);
    apply_periodic(src, per);
    stream_collide_fused<D>(src, ref, mask, mats, col, grid.interior());
  }

  void expectMatchesReference(const SwKernelReport& rep) {
    for (int q = 0; q < D::Q; ++q)
      for (int z = 0; z < grid.nz; ++z)
        for (int y = 0; y < grid.ny; ++y)
          for (int x = 0; x < grid.nx; ++x)
            ASSERT_EQ(dst(q, x, y, z), ref(q, x, y, z))
                << "q=" << q << " (" << x << "," << y << "," << z << ")";
    EXPECT_EQ(rep.cellsUpdated,
              static_cast<std::uint64_t>(grid.nx) * grid.ny * grid.nz);
  }
};

struct SwCase {
  bool pro;
  SwBlocking blocking;
  bool reuse;
  bool share;
  int chunkX;
  const char* label;
};

class SwKernelEquivalence : public ::testing::TestWithParam<SwCase> {};

TEST_P(SwKernelEquivalence, BitIdenticalToReference) {
  const SwCase& tc = GetParam();
  SwEnv env;
  env.addObstacleAndInlet();
  env.finalize(17);

  CpeCluster cluster(tc.pro ? MachineSpec::sw26010pro().cg
                            : MachineSpec::sw26010().cg);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  cfg.blocking = tc.blocking;
  cfg.reuseZWindow = tc.reuse;
  cfg.shareBoundary = tc.share;
  cfg.chunkX = tc.chunkX;
  const SwKernelReport rep =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  env.expectMatchesReference(rep);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SwKernelEquivalence,
    ::testing::Values(
        SwCase{false, SwBlocking::Rows, true, true, 32, "tl_full"},
        SwCase{false, SwBlocking::Rows, true, false, 32, "tl_noshare"},
        SwCase{false, SwBlocking::Rows, false, true, 32, "tl_noreuse"},
        SwCase{false, SwBlocking::Rows, true, true, 8, "tl_chunk8"},
        SwCase{false, SwBlocking::PerCell, true, true, 32, "tl_percell"},
        SwCase{true, SwBlocking::Rows, true, true, 128, "pro_full"},
        SwCase{true, SwBlocking::Rows, true, true, 20, "pro_chunkall"}),
    [](const ::testing::TestParamInfo<SwCase>& info) {
      return std::string(info.param.label);
    });

TEST(SwKernel, LdmCapacityIsEnforced) {
  // A chunk plan too large for the 64 KB SW26010 LDM must throw; the same
  // plan fits the 256 KB of SW26010-Pro.
  SwEnv env(128, 16, 4);
  env.finalize(3);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  cfg.chunkX = 128;

  CpeCluster light(MachineSpec::sw26010().cg);
  EXPECT_THROW(
      sw_stream_collide<D>(light, env.src, env.dst, env.mask, env.mats, cfg),
      Error);

  CpeCluster pro(MachineSpec::sw26010pro().cg);
  const SwKernelReport rep =
      sw_stream_collide<D>(pro, env.src, env.dst, env.mask, env.mats, cfg);
  EXPECT_LE(rep.ldmHighWater, 256u * 1024);
  EXPECT_GT(rep.ldmHighWater, 64u * 1024);  // would not have fit SW26010
}

TEST(SwKernel, LargerLdmOfProAllowsWiderChunksAndFewerTransactions) {
  SwEnv env(128, 16, 4);
  env.finalize(5);
  SwKernelConfig cfg;
  cfg.collision = env.col;

  CpeCluster light(MachineSpec::sw26010().cg);
  cfg.chunkX = 32;
  const auto repLight =
      sw_stream_collide<D>(light, env.src, env.dst, env.mask, env.mats, cfg);

  CpeCluster pro(MachineSpec::sw26010pro().cg);
  cfg.chunkX = 128;
  const auto repPro =
      sw_stream_collide<D>(pro, env.src, env.dst, env.mask, env.mats, cfg);

  EXPECT_LT(repPro.dma.transactions(), repLight.dma.transactions());
}

TEST(SwKernel, RowBlockingBeatsPerCellByOrdersOfMagnitude) {
  SwEnv env;
  env.finalize(7);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  CpeCluster cluster(MachineSpec::sw26010().cg);

  cfg.blocking = SwBlocking::Rows;
  const auto blocked =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  cfg.blocking = SwBlocking::PerCell;
  const auto percell =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);

  // Same work, wildly different transaction counts => modeled time gap.
  EXPECT_GT(percell.dma.transactions(), 20 * blocked.dma.transactions());
  EXPECT_GT(percell.dmaSeconds, 10 * blocked.dmaSeconds);
}

TEST(SwKernel, ZWindowReuseCutsGetBytesRoughlyThreefold) {
  SwEnv env(20, 16, 12);
  env.finalize(9);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  CpeCluster cluster(MachineSpec::sw26010().cg);

  cfg.reuseZWindow = true;
  const auto reuse =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  cfg.reuseZWindow = false;
  const auto noReuse =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);

  const double ratio = static_cast<double>(noReuse.dma.getBytes) /
                       static_cast<double>(reuse.dma.getBytes);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 3.5);
  // Write traffic is identical: reuse only affects loads.
  EXPECT_EQ(noReuse.dma.putBytes, reuse.dma.putBytes);
}

TEST(SwKernel, BoundarySharingMovesTrafficFromDmaToFabric) {
  SwEnv env;
  env.finalize(11);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  CpeCluster cluster(MachineSpec::sw26010().cg);

  cfg.shareBoundary = true;
  const auto shared =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  cfg.shareBoundary = false;
  const auto unshared =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);

  EXPECT_GT(shared.fabric.bytes, 0u);
  EXPECT_EQ(unshared.fabric.bytes, 0u);
  EXPECT_LT(shared.dma.getBytes, unshared.dma.getBytes);
  EXPECT_GT(shared.boundaryRowsViaFabric, 0u);
  EXPECT_EQ(unshared.boundaryRowsViaFabric, 0u);
  // SW26010 register buses cannot reach every neighbour pair: some rows
  // fall back to DMA (the documented 7-of-8 rows coverage).
  EXPECT_GT(shared.boundaryRowsViaDma, 0u);
}

TEST(SwKernel, RmaCoversAllBoundaryRowsOnPro) {
  SwEnv env;
  env.finalize(13);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  cfg.chunkX = 20;
  CpeCluster cluster(MachineSpec::sw26010pro().cg);
  const auto rep =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  EXPECT_GT(rep.boundaryRowsViaFabric, 0u);
  EXPECT_EQ(rep.boundaryRowsViaDma, 0u);  // RMA reaches any CPE pair
}

TEST(SwKernel, DmaBytesPerCellNearCostModel) {
  // Production configuration on a block with ny = 64 (one row per CPE):
  // sharing removes the ghost reloads, so get+put bytes per cell approach
  // 2 * 19 * 8 = 304 B plus the 1-byte mask rows.
  SwEnv env(32, 64, 8);
  env.finalize(15);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  cfg.chunkX = 32;
  CpeCluster cluster(MachineSpec::sw26010().cg);
  const auto rep =
      sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  EXPECT_GT(rep.dmaBytesPerCell(), 300.0);
  EXPECT_LT(rep.dmaBytesPerCell(), 420.0);
}

TEST(SwKernel, MassConservedThroughEmulatedStep) {
  SwEnv env;
  env.finalize(19);
  SwKernelConfig cfg;
  cfg.collision = env.col;
  CpeCluster cluster(MachineSpec::sw26010().cg);
  const Real m0 = total_mass<D>(env.src, env.mask, env.mats);
  sw_stream_collide<D>(cluster, env.src, env.dst, env.mask, env.mats, cfg);
  EXPECT_NEAR(total_mass<D>(env.dst, env.mask, env.mats), m0, 1e-10 * m0);
}

}  // namespace
}  // namespace swlb::sw
