// Patch-based decomposition (runtime/patches, DESIGN.md §13): SFC
// ordering determinism, weighted-bisection balance on skewed masks, and
// the bit-identity contract — any patch layout, intra- or inter-rank,
// with or without mid-run migration, must reproduce the monolithic
// single-block solver exactly (same fused pull kernel, same ghost data).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/solver.hpp"
#include "kernel_conformance.hpp"
#include "runtime/patches.hpp"

namespace swlb::runtime {
namespace {

using conformance::Scenario;
using swlb::Solver;

/// Same smooth deterministic field as conformance::initSmooth, as a free
/// function so the monolithic reference and the patch solver share it.
void smoothField(int x, int y, int z, Real& rho, Vec3& u) {
  rho = 1.0 + 0.03 * std::sin(0.7 * x + 0.3) * std::cos(0.5 * y + 0.1) *
                  std::cos(0.4 * z + 0.2);
  u = {0.02 * std::sin(0.5 * x + 0.1), 0.015 * std::cos(0.6 * y + 0.2),
       0.01 * std::sin(0.3 * z + 0.4)};
}

std::vector<Scenario> patchScenarios() {
  std::vector<Scenario> out;
  out.push_back({"all_fluid_periodic", {7, 5, 3}, {true, true, true},
                 nullptr, false});
  out.push_back({"solid_obstacle", {9, 7, 3}, {true, true, true},
                 [](MaskField& mask, MaterialTable&, const Grid& g) {
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 2; y < 5; ++y)
                       for (int x = 3; x < 6; ++x)
                         mask(x, y, z) = MaterialTable::kSolid;
                 },
                 false});
  out.push_back({"moving_lid", {7, 5, 3}, {false, false, false},
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto lid = mats.addMovingWall({0.05, 0, 0});
                   for (int z = 0; z < g.nz; ++z)
                     for (int x = 0; x < g.nx; ++x)
                       mask(x, g.ny - 1, z) = lid;
                 },
                 false});
  out.push_back({"inlet_outflow", {9, 5, 3}, {false, true, true},
                 [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                   const auto in = mats.addVelocityInlet({0.04, 0, 0});
                   const auto outF = mats.addOutflow({-1, 0, 0});
                   for (int z = 0; z < g.nz; ++z)
                     for (int y = 0; y < g.ny; ++y) {
                       mask(0, y, z) = in;
                       mask(g.nx - 1, y, z) = outF;
                     }
                 },
                 true});
  return out;
}

Solver<D3Q19> makeReference(const Scenario& sc) {
  CollisionConfig cc;
  cc.omega = 1.7;
  const Grid g(sc.extent.x, sc.extent.y, sc.extent.z);
  Solver<D3Q19> ref(g, cc, sc.periodic);
  if (sc.paint) sc.paint(ref.mask(), ref.materials(), g);
  ref.finalizeMask();
  ref.initField(smoothField);
  return ref;
}

/// Run the scenario on `ranks` rank-threads with the given patch grid and
/// compare gathered populations against the monolithic reference after
/// every step.  With `migrateAt > 0`, force a rebalance (skewed explicit
/// weights) at that step and require at least one actual migration.
void expectPatchRunMatchesMonolithic(const Scenario& sc, int ranks,
                                     const Int3& patchGrid, int steps,
                                     int migrateAt = 0,
                                     std::uint64_t rebalanceEvery = 0,
                                     const std::string& backend = "fused",
                                     std::map<int, std::string>
                                         patchBackends = {}) {
  SCOPED_TRACE(sc.name + " ranks=" + std::to_string(ranks) + " patches=" +
               std::to_string(patchGrid.x) + "x" +
               std::to_string(patchGrid.y));
  Solver<D3Q19> ref = makeReference(sc);

  World world(ranks);
  world.run([&](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = sc.extent;
    cfg.collision.omega = 1.7;
    cfg.periodic = sc.periodic;
    cfg.patchGrid = patchGrid;
    cfg.rebalanceEvery = rebalanceEvery;
    cfg.rebalanceThreshold = 1.0001;  // hair trigger for the measured path
    cfg.backend = backend;
    cfg.patchBackends = patchBackends;
    PatchSolver<D3Q19> solver(c, cfg);
    const Grid g(sc.extent.x, sc.extent.y, sc.extent.z);
    if (sc.paint) sc.paint(solver.globalMask(), solver.materials(), g);
    solver.finalizeMask();
    solver.initField(smoothField);

    for (int s = 0; s < steps; ++s) {
      // Only rank 0 advances the shared monolithic reference: the lambda
      // runs on every rank-thread, and concurrent ref.step() calls would
      // race (and over-step) the reference.
      if (c.rank() == 0) ref.step();
      solver.step();
      if (migrateAt > 0 && s + 1 == migrateAt) {
        // Skew one patch's weight so the greedy planner must move work
        // off its owner; every rank passes the identical vector.  The
        // heavy patch is picked on a rank owning at least two patches,
        // so at least one light sibling can actually move.
        std::vector<double> w(
            static_cast<std::size_t>(solver.layout().patchCount()), 1.0);
        std::vector<int> cnt(static_cast<std::size_t>(c.size()), 0);
        for (int o : solver.owners()) ++cnt[static_cast<std::size_t>(o)];
        int heavy = 0;
        for (std::size_t p = 0; p < solver.owners().size(); ++p)
          if (cnt[static_cast<std::size_t>(solver.owners()[p])] >= 2) {
            heavy = static_cast<int>(p);
            break;
          }
        w[static_cast<std::size_t>(heavy)] = 100.0;
        const std::vector<int> before = solver.owners();
        const int moved = solver.rebalanceNow(w, 1.01);
        if (c.rank() == 0) {
          EXPECT_GT(moved, 0) << "forced rebalance moved nothing";
          EXPECT_NE(before, solver.owners());
        }
      }
      PopulationField gathered = solver.gatherPopulations(0);
      // Rank 0 verifies and broadcasts a failure flag so every rank bails
      // out of the loop together — a lone early return would leave the
      // other rank-threads blocked in the next collective.
      int failed = 0;
      const int kFailTag = (1 << 21) + s;
      if (c.rank() == 0) {
        const PopulationField& expect = ref.f();
        int bad = 0, bq = 0, bx = 0, by = 0, bz = 0;
        for (int q = 0; q < D3Q19::Q; ++q)
          for (int z = 0; z < sc.extent.z; ++z)
            for (int y = 0; y < sc.extent.y; ++y)
              for (int x = 0; x < sc.extent.x; ++x)
                if (gathered(q, x, y, z) != expect(q, x, y, z)) {
                  if (bad == 0) {
                    bq = q;
                    bx = x;
                    by = y;
                    bz = z;
                  }
                  ++bad;
                }
        if (bad > 0)
          ADD_FAILURE() << sc.name << " step " << s + 1 << ": " << bad
                        << " mismatched cells, first at q=" << bq << " ("
                        << bx << "," << by << "," << bz << ") got "
                        << gathered(bq, bx, by, bz) << " want "
                        << expect(bq, bx, by, bz);
        failed = ::testing::Test::HasFailure() ? 1 : 0;
        for (int r = 1; r < c.size(); ++r)
          c.isend(r, kFailTag, &failed, sizeof(failed));
      } else {
        c.recv(0, kFailTag, &failed, sizeof(failed));
      }
      if (failed) return;
    }
  });
}

// ---- layout: SFC order + bisection ------------------------------------

TEST(PatchLayout, MortonOrderIsDeterministicAndComplete) {
  const PatchLayout a({32, 32, 8}, {4, 4, 1});
  const PatchLayout b({32, 32, 8}, {4, 4, 1});
  EXPECT_EQ(a.sfcOrder(), b.sfcOrder());

  std::vector<int> sorted = a.sfcOrder();
  std::sort(sorted.begin(), sorted.end());
  for (int p = 0; p < 16; ++p) EXPECT_EQ(sorted[static_cast<size_t>(p)], p);

  // Z-order over a 4x4 grid starts with the (0..1, 0..1) quadrant:
  // (0,0), (1,0), (0,1), (1,1) -> ids 0, 1, 4, 5 (x fastest).
  ASSERT_GE(a.sfcOrder().size(), 4u);
  EXPECT_EQ(a.sfcOrder()[0], 0);
  EXPECT_EQ(a.sfcOrder()[1], 1);
  EXPECT_EQ(a.sfcOrder()[2], 4);
  EXPECT_EQ(a.sfcOrder()[3], 5);
}

TEST(PatchLayout, BisectionBalancesSkewedWeights) {
  const PatchLayout layout({64, 64, 4}, {8, 8, 1});
  const int nranks = 4;
  // Skewed "mask": the left half of the domain is 10x the work.
  std::vector<double> w(64);
  for (int p = 0; p < 64; ++p)
    w[static_cast<size_t>(p)] =
        layout.decomposition().coordsOf(p).x < 4 ? 10.0 : 1.0;

  const std::vector<int> owners = layout.assignBisect(w, nranks);
  std::vector<int> counts(nranks, 0);
  for (int o : owners) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, nranks);
    ++counts[static_cast<size_t>(o)];
  }
  for (int r = 0; r < nranks; ++r) EXPECT_GE(counts[static_cast<size_t>(r)], 1);

  // Contiguous curve segments: owner is non-decreasing along the curve.
  for (std::size_t i = 1; i < layout.sfcOrder().size(); ++i)
    EXPECT_GE(owners[static_cast<size_t>(layout.sfcOrder()[i])],
              owners[static_cast<size_t>(layout.sfcOrder()[i - 1])]);

  // Weighted bisection lands near ideal; equal-count segments (the
  // static-split proxy) bottleneck on the heavy half.
  const double weighted = PatchLayout::rankImbalance(owners, w, nranks);
  std::vector<int> uniform(64);
  for (std::size_t i = 0; i < 64; ++i)
    uniform[static_cast<size_t>(layout.sfcOrder()[i])] =
        static_cast<int>(i) / 16;
  const double unweighted = PatchLayout::rankImbalance(uniform, w, nranks);
  EXPECT_LE(weighted, 1.25);
  EXPECT_GT(unweighted, 1.5);
}

TEST(PatchLayout, FluidWeightsCountStreamingCells) {
  const Int3 global{8, 8, 2};
  const PatchLayout layout(global, {2, 2, 1});
  MaskField mask(Grid(global.x, global.y, global.z), MaterialTable::kFluid);
  MaterialTable mats;
  const auto por = mats.addPorous(0.4);
  // Patch 0 (x<4, y<4) fully solid; one porous (streaming) cell in patch 1.
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) mask(x, y, z) = MaterialTable::kSolid;
  mask(5, 1, 0) = por;

  const std::vector<double> w = layout.fluidWeights(mask, mats);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0], 0.0);   // all solid
  EXPECT_EQ(w[1], 32.0);  // 4x4x2, porous still streams
  EXPECT_EQ(w[2], 32.0);
  EXPECT_EQ(w[3], 32.0);
}

TEST(PatchLayout, PlanRebalanceBringsImbalanceUnderThreshold) {
  const PatchLayout layout({32, 16, 2}, {4, 2, 1});  // 8 patches
  const int nranks = 2;
  // Equal-count assignment with one hot patch: rank 0 carries 13 of 20.
  std::vector<double> w{6.0, 1.0, 1.0, 1.0, 5.0, 2.0, 2.0, 2.0};
  std::vector<int> owners(8);
  for (std::size_t i = 0; i < 8; ++i)
    owners[static_cast<size_t>(layout.sfcOrder()[i])] = i < 4 ? 0 : 1;

  const double before = PatchLayout::rankImbalance(owners, w, nranks);
  const auto moves = layout.planRebalance(owners, w, nranks, 1.05);
  ASSERT_FALSE(moves.empty());
  std::vector<int> after = owners;
  for (const auto& m : moves) {
    EXPECT_EQ(after[static_cast<size_t>(m.patch)], m.from);
    after[static_cast<size_t>(m.patch)] = m.to;
  }
  const double imb = PatchLayout::rankImbalance(after, w, nranks);
  EXPECT_LT(imb, before);
  EXPECT_LE(imb, 1.05);
  // No rank emptied.
  std::vector<int> counts(nranks, 0);
  for (int o : after) ++counts[static_cast<size_t>(o)];
  for (int r = 0; r < nranks; ++r) EXPECT_GE(counts[static_cast<size_t>(r)], 1);
}

// ---- bit-identity vs the monolithic solver ----------------------------

TEST(PatchSolver, IntraRankPatchFacesMatchMonolithic) {
  // One rank, four patches: every patch face is a local copy.
  for (const Scenario& sc : patchScenarios())
    expectPatchRunMatchesMonolithic(sc, 1, {2, 2, 1}, 6);
}

TEST(PatchSolver, InterRankPatchFacesMatchMonolithic) {
  // Four ranks, sixteen patches (down to 1-cell-wide strips on the 7-
  // and 5-cell axes): faces mix local copies and tagged messages.
  for (const Scenario& sc : patchScenarios())
    expectPatchRunMatchesMonolithic(sc, 4, {4, 4, 1}, 6);
}

TEST(PatchSolver, MigrateThenContinueIsBitIdentical) {
  // Force a mid-run migration; the continued run must stay bit-identical
  // to the monolithic reference (hence to an unmigrated patch run, which
  // the tests above pin to the same reference).
  const Int3 global{16, 12, 6};
  Scenario cyl{"cylinder_channel", global, {false, false, true},
               [](MaskField& mask, MaterialTable& mats, const Grid& g) {
                 const auto in = mats.addVelocityInlet({0.04, 0, 0});
                 const auto outF = mats.addOutflow({-1, 0, 0});
                 for (int z = 0; z < g.nz; ++z)
                   for (int y = 0; y < g.ny; ++y) {
                     mask(0, y, z) = in;
                     mask(g.nx - 1, y, z) = outF;
                   }
                 for (int z = 0; z < g.nz; ++z)
                   for (int y = 4; y < 8; ++y)
                     for (int x = 6; x < 9; ++x)
                       mask(x, y, z) = MaterialTable::kSolid;
               },
               true};
  expectPatchRunMatchesMonolithic(cyl, 4, {4, 2, 1}, 12, /*migrateAt=*/6);
}

TEST(PatchSolver, MeasuredRebalanceKeepsBitIdentity) {
  // Hair-trigger measured rebalancing (every 3 steps, threshold ~1):
  // whatever the noisy timers decide, results must not change.
  Scenario sc{"solid_obstacle", {9, 7, 3}, {true, true, true},
              [](MaskField& mask, MaterialTable&, const Grid& g) {
                for (int z = 0; z < g.nz; ++z)
                  for (int y = 2; y < 5; ++y)
                    for (int x = 3; x < 6; ++x)
                      mask(x, y, z) = MaterialTable::kSolid;
              },
              false};
  expectPatchRunMatchesMonolithic(sc, 2, {4, 2, 1}, 9, 0,
                                  /*rebalanceEvery=*/3);
}

TEST(PatchSolver, FluidWeightedAssignmentSkipsSolidHeavyImbalance) {
  // A half-solid domain: fluid-weighted bisection should spread the fluid
  // cells evenly while the uniform-count proxy (static split) leaves one
  // rank nearly idle.
  const Int3 global{32, 16, 4};
  World world(4);
  world.run([&](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = global;
    cfg.periodic = {true, true, true};
    cfg.patchGrid = {8, 4, 1};
    PatchSolver<D3Q19> solver(c, cfg);
    solver.paintGlobal({{0, 0, 0}, {16, 16, 4}}, MaterialTable::kSolid);
    solver.finalizeMask();
    const std::vector<double> w = solver.layout().fluidWeights(
        solver.globalMask(), solver.materials());
    const double fluidImb =
        PatchLayout::rankImbalance(solver.owners(), w, c.size());
    EXPECT_LE(fluidImb, 1.3);
    // Every rank owns at least one patch.
    std::vector<int> counts(c.size(), 0);
    for (int o : solver.owners()) ++counts[static_cast<size_t>(o)];
    if (c.rank() == 0) {
      for (int r = 0; r < c.size(); ++r)
        EXPECT_GE(counts[static_cast<size_t>(r)], 1);
    }
  });
}

// ---- per-patch backend plans -------------------------------------------

TEST(PatchSolver, HeterogeneousPatchBackendsMatchMonolithic) {
  // The tuner's mixed plan: default simd with per-patch overrides to
  // fused, threads, and swcpe.  All four are bit-identical kernels, so a
  // heterogeneous run must still match the monolithic fused reference
  // exactly — including across patch faces where the sender's backend
  // packs the strip and a *different* receiver backend unpacks it, and
  // across a forced migration that rebuilds a patch's backend on its new
  // owner from the replicated plan.
  std::map<int, std::string> plan{{0, "fused"}, {2, "threads"}, {3, "swcpe"}};
  for (const Scenario& sc : patchScenarios())
    expectPatchRunMatchesMonolithic(sc, 2, {2, 2, 1}, 6, /*migrateAt=*/3, 0,
                                    "simd", plan);
}

TEST(PatchSolver, PatchBackendNameResolvesOverrides) {
  World world(1);
  world.run([](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = {8, 8, 2};
    cfg.patchGrid = {2, 2, 1};
    cfg.backend = "simd";
    cfg.patchBackends = {{1, "threads"}};
    PatchSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    EXPECT_EQ(solver.patchBackendName(0), "simd");
    EXPECT_EQ(solver.patchBackendName(1), "threads");
  });
}

TEST(PatchSolver, RejectsInPlaceBackend) {
  // Esoteric streams in place; patch ghost exchange needs the two-lattice
  // A-B contract.  The refusal must be explicit, not a silent fallback.
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = {8, 8, 2};
    cfg.patchGrid = {2, 2, 1};
    cfg.backend = "esoteric";
    PatchSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
  }),
               Error);
}

TEST(PatchSolver, RejectsBackendPlanNamingMissingPatch) {
  World world(1);
  EXPECT_THROW(world.run([](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = {8, 8, 2};
    cfg.patchGrid = {2, 2, 1};
    cfg.patchBackends = {{7, "simd"}};  // layout has patches 0..3
    PatchSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
  }),
               Error);
}

}  // namespace
}  // namespace swlb::runtime
