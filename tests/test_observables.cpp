// Flow observables: momentum-exchange forces (including the
// per-material-id scoping), vorticity, Q-criterion, kinetic energy.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/observables.hpp"
#include "core/solver.hpp"

namespace swlb {
namespace {

TEST(MomentumExchange, UniformFlowPushesAPlate) {
  // Uniform flow against a plate: the x-force must be positive and equal
  // to the analytic momentum-exchange sum for an equilibrium state.
  const int n = 10;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D3Q19> solver(Grid(n, n, n), cfg, Periodicity{true, true, true});
  const auto plate = solver.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});
  solver.paint({{5, 2, 2}, {6, 8, 8}}, plate);
  solver.finalizeMask();
  const Real ux = 0.04;
  solver.initUniform(1.0, {ux, 0, 0});

  // Force on the equilibrium state before any step: each fluid->plate
  // link contributes 2 c_x feq_i.
  const Vec3 f0 = momentum_exchange_force<D3Q19>(
      solver.f(), solver.mask(), solver.materials(), plate);
  EXPECT_GT(f0.x, 0.0);
  EXPECT_NEAR(f0.y, 0.0, 1e-12);
  EXPECT_NEAR(f0.z, 0.0, 1e-12);

  solver.run(50);
  const Vec3 f1 = momentum_exchange_force<D3Q19>(
      solver.f(), solver.mask(), solver.materials(), plate);
  EXPECT_GT(f1.x, 0.0);
}

TEST(MomentumExchange, ScopedToTheRequestedMaterialOnly) {
  // Regression for the force-probe pitfall: with both an obstacle and
  // solid channel walls, the probe on the obstacle id must not include
  // the wall forces (which dwarf the obstacle drag).
  const int n = 12;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D3Q19> solver(Grid(n, n, n), cfg, Periodicity{true, false, false});
  const auto obstacle = solver.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});
  solver.paint({{5, 5, 5}, {7, 7, 7}}, obstacle);
  solver.finalizeMask();  // y/z walls use the built-in kSolid
  solver.initUniform(1.0, {0.03, 0, 0});
  solver.run(30);

  const Vec3 onObstacle = momentum_exchange_force<D3Q19>(
      solver.f(), solver.mask(), solver.materials(), obstacle);
  const Vec3 onWalls = momentum_exchange_force<D3Q19>(
      solver.f(), solver.mask(), solver.materials(), MaterialTable::kSolid);
  EXPECT_GT(onObstacle.x, 0.0);
  // Wall drag differs from the obstacle drag: the ids separate them.
  EXPECT_NE(onObstacle.x, onWalls.x);
}

TEST(MomentumExchange, OppositeFlowsGiveOppositeForces) {
  const int n = 10;
  auto dragAt = [&](Real ux) {
    CollisionConfig cfg;
    cfg.omega = 1.2;
    Solver<D3Q19> solver(Grid(n, n, n), cfg, Periodicity{true, true, true});
    const auto obstacle = solver.materials().add(
        Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});
    solver.paint({{4, 4, 4}, {6, 6, 6}}, obstacle);
    solver.finalizeMask();
    solver.initUniform(1.0, {ux, 0, 0});
    solver.run(20);
    return momentum_exchange_force<D3Q19>(solver.f(), solver.mask(),
                                          solver.materials(), obstacle)
        .x;
  };
  const Real fPlus = dragAt(0.03);
  const Real fMinus = dragAt(-0.03);
  EXPECT_NEAR(fPlus, -fMinus, 1e-10);
}

TEST(MomentumExchange, MovingWallTermContributes) {
  // A moving wall in quiescent fluid drags it: force on the wall opposes
  // the motion direction initially (fluid resists).
  const int n = 8;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D2Q9> solver(Grid(n, n, 1), cfg, Periodicity{true, false, true});
  const auto lid = solver.materials().addMovingWall({0.05, 0, 0});
  solver.paint({{0, n - 1, 0}, {n, n, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(10);
  const Vec3 f = momentum_exchange_force<D2Q9>(solver.f(), solver.mask(),
                                               solver.materials(), lid);
  EXPECT_LT(f.x, 0.0);  // fluid pulls back on the lid
}

// ----------------------------------------------------------- derivatives

TEST(Vorticity, RigidRotationHasConstantCurl) {
  // u = Omega x r with Omega = (0, 0, w) -> curl u = (0, 0, 2w).
  const int n = 16;
  Grid g(n, n, 1);
  VectorField u(g), curl(g);
  const Real w = 0.01;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      u.set(x, y, 0, {-w * (y - n / 2.0), w * (x - n / 2.0), 0});
  vorticity(u, curl);
  for (int y = 2; y < n - 2; ++y)
    for (int x = 2; x < n - 2; ++x) {
      const Vec3 c = curl.at(x, y, 0);
      EXPECT_NEAR(c.z, 2 * w, 1e-12);
      EXPECT_NEAR(c.x, 0.0, 1e-12);
      EXPECT_NEAR(c.y, 0.0, 1e-12);
    }
}

TEST(Vorticity, UniformFlowIsIrrotational) {
  Grid g(8, 8, 8);
  VectorField u(g), curl(g);
  for (int z = 0; z < 8; ++z)
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x) u.set(x, y, z, {0.1, -0.05, 0.02});
  vorticity(u, curl);
  for (int z = 0; z < 8; ++z)
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x)
        EXPECT_NEAR(std::sqrt(curl.at(x, y, z).norm2()), 0.0, 1e-14);
}

TEST(QCriterion, PositiveInVortexCoreNegativeInShear) {
  const int n = 24;
  Grid g(n, n, 1);
  VectorField u(g);
  ScalarField q(g);
  // Rigid rotation: pure rotation -> Q = 0.5 |Omega|^2 > 0 everywhere.
  const Real w = 0.01;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      u.set(x, y, 0, {-w * (y - n / 2.0), w * (x - n / 2.0), 0});
  q_criterion(u, q);
  EXPECT_GT(q(n / 2, n / 2, 0), 0.0);

  // Pure shear u = (k y, 0, 0): |S| == |Omega| -> Q == 0.
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) u.set(x, y, 0, {0.01 * y, 0, 0});
  q_criterion(u, q);
  EXPECT_NEAR(q(n / 2, n / 2, 0), 0.0, 1e-14);

  // Pure strain u = (k x, -k y, 0): Q < 0.
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      u.set(x, y, 0, {0.01 * (x - n / 2.0), -0.01 * (y - n / 2.0), 0});
  q_criterion(u, q);
  EXPECT_LT(q(n / 2, n / 2, 0), 0.0);
}

TEST(KineticEnergy, CountsFluidCellsOnly) {
  Grid g(6, 6, 1);
  ScalarField rho(g, 1.0);
  VectorField u(g);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 6; ++x) u.set(x, y, 0, {0.1, 0, 0});
  // Solidify half the domain: energy halves.
  const Real full = kinetic_energy(rho, u, mask, mats);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 3; ++x) mask(x, y, 0) = MaterialTable::kSolid;
  const Real half = kinetic_energy(rho, u, mask, mats);
  EXPECT_NEAR(full, 36 * 0.5 * 0.01, 1e-14);
  EXPECT_NEAR(half, full / 2, 1e-14);
}

TEST(KineticEnergy, MonotonicallyDecaysInUnforcedFlow) {
  const int n = 16;
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Solver<D2Q9> solver(Grid(n, n, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  const Real k = 2 * std::numbers::pi / n;
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {0.02 * std::sin(k * y), 0.02 * std::sin(k * x), 0};
  });
  auto energy = [&] {
    ScalarField rho(solver.grid());
    VectorField u(solver.grid());
    solver.computeMacroscopic(rho, u);
    return kinetic_energy(rho, u, solver.mask(), solver.materials());
  };
  Real prev = energy();
  for (int i = 0; i < 5; ++i) {
    solver.run(50);
    const Real e = energy();
    EXPECT_LT(e, prev);
    prev = e;
  }
}

}  // namespace
}  // namespace swlb
