// Solver-level physics across every lattice descriptor: the D3Q15 and
// D3Q27 variants must reproduce the same viscous decay as D3Q19/D2Q9.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/solver.hpp"

namespace swlb {
namespace {

template <class D>
class LatticeSweep : public ::testing::Test {};

using AllDescriptors = ::testing::Types<D2Q9, D3Q15, D3Q19, D3Q27>;
TYPED_TEST_SUITE(LatticeSweep, AllDescriptors);

TYPED_TEST(LatticeSweep, TaylorGreenDecayRate) {
  using D = TypeParam;
  const int n = 24;
  const Real nu = 0.04, u0 = 0.015;
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  Solver<D> solver(Grid(n, n, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u.x = -u0 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5)));
    u.y = u0 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5)));
  });
  const int steps = 250;
  solver.run(steps);
  const Real decay = std::exp(-2 * nu * k * k * steps);
  Real maxErr = 0;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      const Real ex =
          -u0 * decay * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5)));
      maxErr = std::max(maxErr, std::abs(solver.velocity(x, y, 0).x - ex));
    }
  EXPECT_LT(maxErr / u0, 0.03) << D::name();
}

TYPED_TEST(LatticeSweep, PoiseuilleProfile) {
  using D = TypeParam;
  const int nx = 4, ny = 20;
  const Real nu = 1.0 / 6.0;
  const Real g = 1e-6;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  cfg.bodyForce = {g, 0, 0};
  Solver<D> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(6000);
  const Real H = ny;
  Real maxErr = 0, maxU = 0;
  for (int y = 0; y < ny; ++y) {
    const Real yw = y + 0.5;
    const Real expected = g / (2 * nu) * yw * (H - yw);
    maxErr = std::max(maxErr, std::abs(solver.velocity(1, y, 0).x - expected));
    maxU = std::max(maxU, expected);
  }
  EXPECT_LT(maxErr / maxU, 0.01) << D::name();
}

TYPED_TEST(LatticeSweep, CavityMassConservedAndFinite) {
  using D = TypeParam;
  const int n = 10;
  CollisionConfig cfg;
  cfg.omega = 1.3;
  Solver<D> solver(Grid(n, n, D::dim == 2 ? 1 : n), cfg);
  const auto lid = solver.materials().addMovingWall({0.05, 0, 0});
  const int zTop = D::dim == 2 ? 0 : n - 1;
  solver.paint({{0, D::dim == 2 ? n - 1 : 0, zTop},
                {n, n, zTop + 1}},
               lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  const Real m0 = solver.totalMass();
  solver.run(200);
  EXPECT_NEAR(solver.totalMass(), m0, 1e-9 * m0) << D::name();
  EXPECT_TRUE(std::isfinite(solver.velocity(n / 2, n / 2, 0).x));
}

}  // namespace
}  // namespace swlb
