// Partial bounce-back porous media (Walsh-Burwinkle-Saar model).
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb {
namespace {

TEST(Porous, SolidityZeroIsBitwiseFluid) {
  // A porous region with sigma = 0 must evolve exactly like plain fluid.
  auto run = [](bool markPorous) {
    CollisionConfig cfg;
    cfg.omega = 1.4;
    Solver<D3Q19> solver(Grid(10, 8, 4), cfg, Periodicity{true, true, true});
    if (markPorous) {
      const auto p = solver.materials().addPorous(0.0);
      solver.paint({{3, 2, 1}, {7, 6, 3}}, p);
    }
    solver.finalizeMask();
    solver.initField([](int x, int y, int z, Real& rho, Vec3& u) {
      rho = 1.0 + 0.004 * ((x + y + z) % 3);
      u = {0.02, 0.01 * (y % 2), 0};
    });
    solver.run(10);
    return solver;
  };
  Solver<D3Q19> plain = run(false);
  Solver<D3Q19> porous = run(true);
  for (std::size_t i = 0; i < plain.f().size(); ++i)
    ASSERT_EQ(plain.f().data()[i], porous.f().data()[i]);
}

TEST(Porous, ConservesMass) {
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Solver<D3Q19> solver(Grid(10, 8, 4), cfg, Periodicity{true, true, true});
  const auto p = solver.materials().addPorous(0.35);
  solver.paint({{4, 0, 0}, {6, 8, 4}}, p);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.03, 0, 0});
  // Mass over *all* streaming cells (fluid + porous).
  auto mass = [&] {
    Real m = 0;
    const Grid& g = solver.grid();
    for (int z = 0; z < g.nz; ++z)
      for (int y = 0; y < g.ny; ++y)
        for (int x = 0; x < g.nx; ++x)
          for (int i = 0; i < D3Q19::Q; ++i) m += solver.f()(i, x, y, z);
    return m;
  };
  const Real m0 = mass();
  solver.run(30);
  EXPECT_NEAR(mass(), m0, 1e-10 * m0);
}

TEST(Porous, ActsAsMomentumSink) {
  // A porous slab across a periodic channel decelerates the flow; higher
  // solidity decelerates more.
  auto momentumAfter = [](Real sigma) {
    CollisionConfig cfg;
    cfg.omega = 1.2;
    Solver<D2Q9> solver(Grid(24, 8, 1), cfg, Periodicity{true, true, true});
    if (sigma > 0) {
      const auto p = solver.materials().addPorous(sigma);
      solver.paint({{10, 0, 0}, {14, 8, 1}}, p);
    }
    solver.finalizeMask();
    solver.initUniform(1.0, {0.05, 0, 0});
    solver.run(100);
    Real px = 0;
    const Grid& g = solver.grid();
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x)
        for (int i = 0; i < D2Q9::Q; ++i)
          px += solver.f()(i, x, y, 0) * D2Q9::c[i][0];
    return px;
  };
  const Real free = momentumAfter(0.0);
  const Real light = momentumAfter(0.1);
  const Real dense = momentumAfter(0.5);
  EXPECT_LT(light, free);
  EXPECT_LT(dense, light);
  // Strong solidity kills the through-flow almost entirely (the periodic
  // plug sloshes around zero): well under a tenth of the free momentum.
  EXPECT_LT(std::abs(dense), 0.1 * free);
}

TEST(Porous, WakeDeficitBehindADisk) {
  // Actuator-disk style: a porous strip in a channel leaves a velocity
  // deficit behind it while bypass flow accelerates around it.
  const int nx = 48, ny = 24;
  CollisionConfig cfg;
  cfg.omega = 1.3;
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, true, true});
  const auto in = solver.materials().addVelocityInlet({0.05, 0, 0});
  const auto out = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, in);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, out);
  const auto disk = solver.materials().addPorous(0.4);
  solver.paint({{12, 8, 0}, {14, 16, 1}}, disk);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.05, 0, 0});
  solver.run(1500);

  const Real wake = solver.velocity(24, 12, 0).x;    // behind the disk
  const Real bypass = solver.velocity(24, 2, 0).x;   // beside it
  EXPECT_LT(wake, 0.045);
  EXPECT_GT(bypass, wake);
}

TEST(Porous, AllKernelsAgreeBitwise) {
  using D = D3Q19;
  const int nx = 12, ny = 10, nz = 4;
  Grid grid(nx, ny, nz);
  MaterialTable mats;
  const auto p = mats.addPorous(0.3);
  MaskField mask(grid, MaterialTable::kFluid);
  for (int z = 0; z < nz; ++z)
    for (int y = 3; y < 7; ++y)
      for (int x = 4; x < 8; ++x) mask(x, y, z) = p;
  const Periodicity per{true, true, true};
  fill_halo_mask(mask, per, MaterialTable::kSolid);

  PopulationField src(grid, D::Q);
  Real feq[D::Q];
  for (int z = -1; z <= nz; ++z)
    for (int y = -1; y <= ny; ++y)
      for (int x = -1; x <= nx; ++x) {
        equilibria<D>(1.0 + 0.002 * ((x + y) % 5), {0.03, 0.005 * (z % 2), 0},
                      feq);
        for (int i = 0; i < D::Q; ++i) src(i, x, y, z) = feq[i];
      }
  apply_periodic(src, per);

  CollisionConfig cfg;
  cfg.omega = 1.5;
  PopulationField a(grid, D::Q), b(grid, D::Q), c(grid, D::Q), d(grid, D::Q);
  stream_collide_fused<D>(src, a, mask, mats, cfg, grid.interior());
  stream_collide_generic<D>(src, b, mask, mats, cfg, grid.interior());
  stream_only<D>(src, c, mask, mats, grid.interior());
  collide_inplace<D>(c, mask, mats, cfg, grid.interior());
  sw::CpeCluster cluster(sw::MachineSpec::sw26010().cg);
  sw::SwKernelConfig swCfg;
  swCfg.collision = cfg;
  swCfg.chunkX = 12;
  sw::sw_stream_collide<D>(cluster, src, d, mask, mats, swCfg);

  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < nz; ++z)
      for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x) {
          ASSERT_EQ(a(q, x, y, z), b(q, x, y, z)) << "fused vs generic";
          ASSERT_EQ(a(q, x, y, z), c(q, x, y, z)) << "fused vs two-step";
          ASSERT_EQ(a(q, x, y, z), d(q, x, y, z)) << "fused vs emulator";
        }
}

TEST(Porous, RejectsOutOfRangeSolidity) {
  MaterialTable mats;
  EXPECT_THROW(mats.addPorous(-0.1), Error);
  EXPECT_THROW(mats.addPorous(1.5), Error);
  EXPECT_NO_THROW(mats.addPorous(1.0));
}

}  // namespace
}  // namespace swlb
