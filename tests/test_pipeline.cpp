// Dual-pipeline issue model (paper Fig. 10(2)).
#include <gtest/gtest.h>

#include "sw/pipeline.hpp"

namespace swlb::sw {
namespace {

TEST(PipelineModel, NaiveScheduleSerializesBothPipes) {
  InstructionMix mix;
  mix.flops = 100;
  mix.memOps = 60;
  mix.flopsPerCycle = 2;
  mix.memOpsPerCycle = 1;
  PipelineModel naive(0.0);
  EXPECT_DOUBLE_EQ(naive.cycles(mix), 50 + 60);
}

TEST(PipelineModel, PerfectScheduleOverlapsToTheLongerPipe) {
  InstructionMix mix;
  mix.flops = 100;
  mix.memOps = 60;
  mix.flopsPerCycle = 2;
  mix.memOpsPerCycle = 1;
  PipelineModel perfect(1.0);
  EXPECT_DOUBLE_EQ(perfect.cycles(mix), 60);
  EXPECT_NEAR(PipelineModel::idealSpeedup(mix), 110.0 / 60.0, 1e-12);
}

TEST(PipelineModel, SchedulingQualityInterpolatesMonotonically) {
  InstructionMix mix;
  mix.flops = 200;
  mix.memOps = 120;
  mix.flopsPerCycle = 4;
  mix.memOpsPerCycle = 1;
  double prev = PipelineModel(0.0).cycles(mix);
  for (double s : {0.25, 0.5, 0.75, 1.0}) {
    const double c = PipelineModel(s).cycles(mix);
    EXPECT_LT(c, prev);
    prev = c;
  }
  // Out-of-range scheduling factors are clamped.
  EXPECT_DOUBLE_EQ(PipelineModel(2.0).cycles(mix), PipelineModel(1.0).cycles(mix));
  EXPECT_DOUBLE_EQ(PipelineModel(-1.0).cycles(mix), PipelineModel(0.0).cycles(mix));
}

TEST(PipelineModel, BalancedPipesGainTheMostFromScheduling) {
  // Ideal speedup is maximal (2x) when both pipes carry equal cycles and
  // approaches 1x when one pipe dominates.
  InstructionMix balanced{100, 100, 1, 1};
  InstructionMix lopsided{1000, 10, 1, 1};
  EXPECT_NEAR(PipelineModel::idealSpeedup(balanced), 2.0, 1e-12);
  EXPECT_LT(PipelineModel::idealSpeedup(lopsided), 1.02);
}

TEST(PipelineModel, D3Q19MixBenefitsFromVectorWidth) {
  // The 512-bit CPEs of SW26010-Pro (8 lanes) shift the D3Q19 loop from
  // L0-bound to more balanced than the 256-bit SW26010 (4 lanes).
  const auto mix4 = d3q19_cell_mix(4);
  const auto mix8 = d3q19_cell_mix(8);
  PipelineModel tuned(0.9);
  EXPECT_LT(tuned.cycles(mix8), tuned.cycles(mix4));
  // Assembly scheduling is worth >= ~1.3x on the 4-lane mix — the kind of
  // gain the paper's "+assembly" stage reports on top of fusion.
  EXPECT_GT(PipelineModel::idealSpeedup(mix4), 1.3);
}

}  // namespace
}  // namespace swlb::sw
