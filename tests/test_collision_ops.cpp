// TRT and MRT collision operators: conservation, BGK degeneracy, moment
// matrix orthogonality, viscosity calibration, TRT's viscosity-independent
// wall placement.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "core/collision_ops.hpp"
#include "core/solver.hpp"

namespace swlb {
namespace {

template <class D>
void randomPopulations(Real* f, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<Real> dist(0.01, 0.2);
  for (int i = 0; i < D::Q; ++i) f[i] = D::w[i] * (1 + dist(rng));
}

// ------------------------------------------------------------------- TRT

template <class D>
class TrtTest : public ::testing::Test {};

using Descriptors = ::testing::Types<D2Q9, D3Q15, D3Q19, D3Q27>;
TYPED_TEST_SUITE(TrtTest, Descriptors);

TYPED_TEST(TrtTest, ConservesMassAndMomentum) {
  using D = TypeParam;
  Real f[D::Q];
  randomPopulations<D>(f, 3);
  Real rho0;
  Vec3 m0;
  moments<D>(f, rho0, m0);
  Real rho;
  Vec3 u;
  trt_collide_cell<D>(f, 1.4, 3.0 / 16.0, rho, u);
  Real rho1;
  Vec3 m1;
  moments<D>(f, rho1, m1);
  EXPECT_NEAR(rho1, rho0, 1e-13);
  EXPECT_NEAR(m1.x, m0.x, 1e-13);
  EXPECT_NEAR(m1.y, m0.y, 1e-13);
  EXPECT_NEAR(m1.z, m0.z, 1e-13);
}

TYPED_TEST(TrtTest, EqualRatesReduceToBgk) {
  using D = TypeParam;
  // Lambda = (tau - 1/2)^2 makes omega- == omega+ == omega: plain BGK.
  const Real omega = 1.3;
  const Real tau = 1 / omega;
  const Real lambda = (tau - 0.5) * (tau - 0.5);

  Real fTrt[D::Q], fBgk[D::Q];
  randomPopulations<D>(fTrt, 17);
  for (int i = 0; i < D::Q; ++i) fBgk[i] = fTrt[i];

  Real rho;
  Vec3 u;
  trt_collide_cell<D>(fTrt, omega, lambda, rho, u);
  CollisionConfig cfg;
  cfg.omega = omega;
  bgk_collide_cell<D>(fBgk, cfg, rho, u);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(fTrt[i], fBgk[i], 1e-14);
}

TYPED_TEST(TrtTest, EquilibriumIsFixedPoint) {
  using D = TypeParam;
  Real f[D::Q];
  const Vec3 u0 = D::dim == 2 ? Vec3{0.04, -0.02, 0} : Vec3{0.04, -0.02, 0.01};
  equilibria<D>(1.05, u0, f);
  Real before[D::Q];
  for (int i = 0; i < D::Q; ++i) before[i] = f[i];
  Real rho;
  Vec3 u;
  trt_collide_cell<D>(f, 1.7, 3.0 / 16.0, rho, u);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(f[i], before[i], 1e-13);
}

TEST(TrtPoiseuille, MagicLambdaRemovesViscosityDependentSlip) {
  // At large tau, BGK + half-way bounce-back shifts the effective wall;
  // TRT with Lambda = 3/16 keeps it exactly half-way.  Compare profile
  // errors at tau = 1.8.
  const int nx = 4, ny = 16;
  const Real tau = 1.8;
  const Real nu = viscosity_from_tau(tau);
  const Real g = 1e-6;
  const Real H = ny;

  auto profileError = [&](CollisionOp op) {
    CollisionConfig cfg;
    cfg.omega = omega_from_tau(tau);
    cfg.op = op;
    cfg.bodyForce = {g, 0, 0};
    Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
    solver.finalizeMask();
    solver.initUniform(1.0, {0, 0, 0});
    solver.run(20000);
    Real maxErr = 0, maxU = 0;
    for (int y = 0; y < ny; ++y) {
      const Real yw = y + 0.5;
      const Real expected = g / (2 * nu) * yw * (H - yw);
      maxErr = std::max(maxErr, std::abs(solver.velocity(1, y, 0).x - expected));
      maxU = std::max(maxU, expected);
    }
    return maxErr / maxU;
  };

  // TRT with forcing is not supported by the dispatch; use the raw TRT
  // operator through a BGK-forced comparison instead: drive both with the
  // body force on the BGK path and TRT via pressure-free shear?  Simpler:
  // TRT supports no body force, so drive the channel with a moving-wall
  // (Couette) pair and check the linear profile instead.
  (void)profileError;

  auto couetteError = [&](CollisionOp op) {
    CollisionConfig cfg;
    cfg.omega = omega_from_tau(tau);
    cfg.op = op;
    Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{true, false, true});
    const Real uw = 0.04;
    const auto lid = solver.materials().addMovingWall({uw, 0, 0});
    solver.paint({{0, ny - 1, 0}, {nx, ny, 1}}, lid);
    solver.finalizeMask();
    solver.initUniform(1.0, {0, 0, 0});
    solver.run(20000);
    Real maxErr = 0;
    for (int y = 0; y < ny - 1; ++y) {
      const Real expected = uw * (y + 0.5) / (ny - 1);
      maxErr = std::max(maxErr, std::abs(solver.velocity(1, y, 0).x - expected));
    }
    return maxErr / uw;
  };

  const Real errBgk = couetteError(CollisionOp::BGK);
  const Real errTrt = couetteError(CollisionOp::TRT);
  // Both must be accurate; TRT must not be worse than BGK at high tau.
  EXPECT_LT(errTrt, 0.03);
  EXPECT_LE(errTrt, errBgk + 1e-9);
}

// ------------------------------------------------------------------- MRT

TEST(Mrt, MomentMatrixRowsAreOrthogonal) {
  const auto& M = MrtD3Q19::matrix();
  const auto& norms = MrtD3Q19::rowNorms();
  for (int a = 0; a < 19; ++a) {
    for (int b = 0; b < 19; ++b) {
      long long dot = 0;
      for (int i = 0; i < 19; ++i) dot += static_cast<long long>(M[a][i]) * M[b][i];
      if (a == b) {
        EXPECT_EQ(dot, norms[a]);
        EXPECT_GT(dot, 0);
      } else {
        EXPECT_EQ(dot, 0) << "rows " << a << " and " << b;
      }
    }
  }
}

TEST(Mrt, FirstRowsAreConservedMoments) {
  const auto& M = MrtD3Q19::matrix();
  for (int i = 0; i < 19; ++i) {
    EXPECT_EQ(M[0][i], 1);                 // density
    EXPECT_EQ(M[3][i], D3Q19::c[i][0]);    // jx
    EXPECT_EQ(M[5][i], D3Q19::c[i][1]);    // jy
    EXPECT_EQ(M[7][i], D3Q19::c[i][2]);    // jz
  }
}

TEST(Mrt, ConservesMassAndMomentum) {
  Real f[19];
  randomPopulations<D3Q19>(f, 23);
  Real rho0;
  Vec3 m0;
  moments<D3Q19>(f, rho0, m0);
  Real rho;
  Vec3 u;
  MrtD3Q19::collide(f, MrtD3Q19::Rates::standard(1.3), rho, u);
  Real rho1;
  Vec3 m1;
  moments<D3Q19>(f, rho1, m1);
  EXPECT_NEAR(rho1, rho0, 1e-13);
  EXPECT_NEAR(m1.x, m0.x, 1e-13);
  EXPECT_NEAR(m1.y, m0.y, 1e-13);
  EXPECT_NEAR(m1.z, m0.z, 1e-13);
}

TEST(Mrt, AllRatesEqualReducesToBgk) {
  const Real omega = 1.45;
  Real fMrt[19], fBgk[19];
  randomPopulations<D3Q19>(fMrt, 31);
  for (int i = 0; i < 19; ++i) fBgk[i] = fMrt[i];

  Real rho;
  Vec3 u;
  MrtD3Q19::collide(fMrt, MrtD3Q19::Rates::allEqual(omega), rho, u);
  CollisionConfig cfg;
  cfg.omega = omega;
  bgk_collide_cell<D3Q19>(fBgk, cfg, rho, u);
  for (int i = 0; i < 19; ++i) EXPECT_NEAR(fMrt[i], fBgk[i], 1e-13);
}

TEST(Mrt, EquilibriumIsFixedPoint) {
  Real f[19];
  equilibria<D3Q19>(0.95, {0.03, -0.01, 0.02}, f);
  Real before[19];
  for (int i = 0; i < 19; ++i) before[i] = f[i];
  Real rho;
  Vec3 u;
  MrtD3Q19::collide(f, MrtD3Q19::Rates::standard(1.2), rho, u);
  for (int i = 0; i < 19; ++i) EXPECT_NEAR(f[i], before[i], 1e-13);
}

TEST(Mrt, RejectedForOtherLattices) {
  Real f[D2Q9::Q];
  equilibria<D2Q9>(1.0, {0, 0, 0}, f);
  CollisionConfig cfg;
  cfg.op = CollisionOp::MRT;
  Real rho;
  Vec3 u;
  EXPECT_THROW((collide_cell<D2Q9>(f, cfg, rho, u)), Error);
}

// ------------------------------------------------ solver-level validation

struct OpCase {
  CollisionOp op;
  const char* label;
};

class OperatorTgvTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OperatorTgvTest, TaylorGreenDecayMatchesViscosity) {
  // The viscosity rate of every operator must produce the same physical
  // decay: u(t) = u0 exp(-2 nu k^2 t) on a periodic 3-D box (z thin).
  const int n = 24;
  const Real nu = 0.03, u0 = 0.015;
  const Real k = 2 * std::numbers::pi / n;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(nu));
  cfg.op = GetParam().op;

  Solver<D3Q19> solver(Grid(n, n, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u.x = -u0 * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
    u.y = u0 * std::sin(k * (x + 0.5)) * std::cos(k * (y + 0.5));
  });
  const int steps = 300;
  solver.run(steps);
  const Real decay = std::exp(-2 * nu * k * k * steps);
  Real maxErr = 0;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      const Real ex = -u0 * decay * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
      maxErr = std::max(maxErr, std::abs(solver.velocity(x, y, 0).x - ex));
    }
  EXPECT_LT(maxErr / u0, 0.03) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(AllOperators, OperatorTgvTest,
                         ::testing::Values(OpCase{CollisionOp::BGK, "bgk"},
                                           OpCase{CollisionOp::TRT, "trt"},
                                           OpCase{CollisionOp::MRT, "mrt"}),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           std::string s = info.param.label;
                           s[0] = static_cast<char>(std::toupper(s[0]));
                           return s;
                         });

TEST(OperatorStability, MrtSurvivesWhereBgkParametersAreMarginal) {
  // Under-relaxed lid cavity at tau close to 0.5: MRT's tuned rates damp
  // the ghost modes; the run must stay finite and conserve mass.
  const int n = 16;
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(0.51);
  cfg.op = CollisionOp::MRT;
  Solver<D3Q19> solver(Grid(n, n, n), cfg);
  const auto lid = solver.materials().addMovingWall({0.08, 0, 0});
  solver.paint({{0, 0, n - 1}, {n, n, n}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  const Real m0 = solver.totalMass();
  solver.run(300);
  const Real m1 = solver.totalMass();
  EXPECT_TRUE(std::isfinite(m1));
  EXPECT_NEAR(m1, m0, 1e-8 * m0);
  EXPECT_TRUE(std::isfinite(solver.velocity(n / 2, n / 2, n / 2).x));
}

}  // namespace
}  // namespace swlb
