// Sponge zones (absorbing outflow buffers) and the step profiler.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/profiler.hpp"
#include "core/solver.hpp"
#include "core/sponge.hpp"

namespace swlb {
namespace {

TEST(Sponge, StrengthRampsQuadraticallyTowardTheOuterEdge) {
  SpongeZone zone;
  zone.box = {{10, 0, 0}, {20, 4, 1}};
  zone.axis = 0;
  zone.highSide = true;
  zone.maxStrength = 0.2;
  EXPECT_EQ(sponge_strength(zone, 5, 0, 0), 0.0);   // outside
  EXPECT_EQ(sponge_strength(zone, 10, 0, 0), 0.0);  // inner edge
  EXPECT_NEAR(sponge_strength(zone, 19, 0, 0), 0.2, 1e-12);  // outer edge
  // Monotone growth.
  Real prev = 0;
  for (int x = 10; x < 20; ++x) {
    const Real s = sponge_strength(zone, x, 0, 0);
    EXPECT_GE(s, prev);
    prev = s;
  }
  // Low-side variant ramps the other way.
  zone.highSide = false;
  EXPECT_NEAR(sponge_strength(zone, 10, 0, 0), 0.2, 1e-12);
  EXPECT_EQ(sponge_strength(zone, 19, 0, 0), 0.0);
}

TEST(Sponge, DrivesPopulationsTowardTargetEquilibrium) {
  Grid g(8, 4, 1);
  PopulationField f(g, D2Q9::Q);
  Real feq[D2Q9::Q];
  equilibria<D2Q9>(1.1, {0.08, 0.02, 0}, feq);  // far from the target
  for (int q = 0; q < D2Q9::Q; ++q)
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 8; ++x) f(q, x, y, 0) = feq[q];

  SpongeZone zone;
  zone.box = {{4, 0, 0}, {8, 4, 1}};
  zone.maxStrength = 0.5;
  zone.targetRho = 1.0;
  zone.targetU = {0.02, 0, 0};
  for (int it = 0; it < 200; ++it) apply_sponge<D2Q9>(f, zone);

  // Strong-sponge cells converge to the target state...
  Real fi[D2Q9::Q];
  for (int i = 0; i < D2Q9::Q; ++i) fi[i] = f(i, 7, 2, 0);
  Real rho;
  Vec3 mom;
  moments<D2Q9>(fi, rho, mom);
  EXPECT_NEAR(rho, 1.0, 1e-6);
  EXPECT_NEAR(mom.x / rho, 0.02, 1e-6);
  // ... cells outside the zone are untouched.
  EXPECT_EQ(f(1, 2, 2, 0), feq[1]);
}

TEST(Sponge, ReducesOutflowReflectionInAChannel) {
  // A density pulse travels toward the outflow; with a sponge the
  // reflected disturbance re-entering the probe region is weaker.
  auto runWithSponge = [](bool useSponge) {
    const int nx = 64, ny = 4;
    CollisionConfig cfg;
    cfg.omega = 1.6;  // lightly damped: reflections survive without help
    Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, true, true});
    const auto outR = solver.materials().addOutflow({-1, 0, 0});
    const auto outL = solver.materials().addOutflow({1, 0, 0});
    solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, outR);
    solver.paint({{0, 0, 0}, {1, ny, 1}}, outL);  // both ends open
    solver.finalizeMask();
    solver.initField([&](int x, int, int, Real& rho, Vec3& u) {
      rho = 1.0 + 0.05 * std::exp(-0.05 * (x - 20) * (x - 20));  // pulse
      u = {0, 0, 0};
    });
    SpongeZone zone;
    zone.box = {{48, 0, 0}, {63, ny, 1}};
    zone.maxStrength = 0.3;
    for (int s = 0; s < 140; ++s) {
      solver.step();
      if (useSponge) apply_sponge<D2Q9>(solver.f(), zone);
    }
    // Residual disturbance in the probe region after the pulse should
    // have left the domain.
    Real maxDev = 0;
    for (int x = 8; x < 40; ++x)
      maxDev = std::max(maxDev, std::abs(solver.density(x, 2, 0) - 1.0));
    return maxDev;
  };
  const Real with = runWithSponge(true);
  const Real without = runWithSponge(false);
  EXPECT_LT(with, without);
  EXPECT_LT(with, 0.01);
}

// ---------------------------------------------------------------- profiler

TEST(Profiler, AggregatesTimingStatistics) {
  StepProfiler p(1000.0);
  p.record(0.01);
  p.record(0.03);
  p.record(0.02);
  EXPECT_EQ(p.steps(), 3u);
  EXPECT_NEAR(p.totalSeconds(), 0.06, 1e-12);
  EXPECT_NEAR(p.meanSeconds(), 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(p.minSeconds(), 0.01);
  EXPECT_DOUBLE_EQ(p.maxSeconds(), 0.03);
  // 3000 updates in 0.06 s = 0.05 MLUPS.
  EXPECT_NEAR(p.mlups(), 0.05, 1e-9);
  EXPECT_NEAR(p.gflops(418), 0.05e6 * 418 / 1e9, 1e-9);
}

TEST(Profiler, TimesRealWork) {
  StepProfiler p(100.0);
  p.step([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  EXPECT_EQ(p.steps(), 1u);
  EXPECT_GE(p.minSeconds(), 0.004);
  p.reset();
  EXPECT_EQ(p.steps(), 0u);
  EXPECT_EQ(p.mlups(), 0.0);
}

TEST(Profiler, RejectsNonPositiveCellCounts) {
  EXPECT_THROW(StepProfiler(0), Error);
  EXPECT_THROW(StepProfiler(-5), Error);
}

}  // namespace
}  // namespace swlb
