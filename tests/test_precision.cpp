// Storage-precision layer tests (DESIGN.md §8): software binary16
// conversion against known bit patterns, weight-shifted encode/decode
// round trips and quantization bounds, reduced-precision population
// fields, cross-precision checkpoint conversion, the LDM blocking gain
// from smaller storage elements, and a bounded f32-vs-f64 solver
// divergence over a lid-driven cavity run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/precision.hpp"
#include "core/solver.hpp"
#include "io/checkpoint.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb {
namespace {

namespace fs = std::filesystem;

std::string tmpPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ---- f16: software binary16 --------------------------------------------

TEST(F16, KnownBitPatterns) {
  EXPECT_EQ(f16(1.0f).bits, 0x3C00u);
  EXPECT_EQ(f16(-2.0f).bits, 0xC000u);
  EXPECT_EQ(f16(0.5f).bits, 0x3800u);
  EXPECT_EQ(f16(0.0f).bits, 0x0000u);
  EXPECT_EQ(f16(-0.0f).bits, 0x8000u);
  EXPECT_EQ(f16(65504.0f).bits, 0x7BFFu);  // largest finite half
  // Smallest normal and smallest subnormal.
  EXPECT_EQ(f16(std::ldexp(1.0f, -14)).bits, 0x0400u);
  EXPECT_EQ(f16(std::ldexp(1.0f, -24)).bits, 0x0001u);
}

TEST(F16, RoundTripIsExactForRepresentableValues) {
  // Every finite half round-trips bit-exactly through float.
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    f16 h;
    h.bits = static_cast<std::uint16_t>(b);
    if ((b & 0x7C00u) == 0x7C00u) continue;  // skip inf/NaN
    const float f = static_cast<float>(h);
    EXPECT_EQ(f16(f).bits, h.bits) << "bits=0x" << std::hex << b;
  }
}

TEST(F16, OverflowSaturatesToInfinity) {
  EXPECT_EQ(f16(65536.0f).bits, 0x7C00u);
  EXPECT_EQ(f16(-1e9f).bits, 0xFC00u);
  EXPECT_EQ(f16(std::numeric_limits<float>::infinity()).bits, 0x7C00u);
  EXPECT_TRUE(std::isinf(static_cast<float>(f16(70000.0f))));
}

TEST(F16, RoundsToNearestTiesToEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 (even mantissa) and the next
  // half up (odd mantissa): ties-to-even keeps 1.0.
  EXPECT_EQ(f16(1.0f + std::ldexp(1.0f, -11)).bits, 0x3C00u);
  // 1 + 3*2^-11 is halfway between mantissas 1 (odd) and 2 (even): up.
  EXPECT_EQ(f16(1.0f + 3 * std::ldexp(1.0f, -11)).bits, 0x3C02u);
  // Just above halfway always rounds up.
  EXPECT_EQ(f16(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -16)).bits,
            0x3C01u);
  // Underflow tie at 2^-25 goes to zero (even).
  EXPECT_EQ(f16(std::ldexp(1.0f, -25)).bits, 0x0000u);
}

TEST(F16, SubnormalsConvertExactly) {
  for (int k = 1; k <= 10; ++k) {
    const float v = std::ldexp(1.0f, -14 - k);  // subnormal powers of two
    const f16 h(v);
    EXPECT_EQ(static_cast<float>(h), v);
  }
}

// ---- weight-shifted encode/decode --------------------------------------

TEST(StorageTraits, EquilibriumAtRestStoresExactZero) {
  // At rest equilibrium f_i == w_i, so the shifted stored value is exactly
  // 0 in every storage type — no quantization at the fixed point.
  for (int i = 0; i < D3Q19::Q; ++i) {
    const Real w = D3Q19::w[i];
    EXPECT_EQ(StorageTraits<float>::encode(w, w), 0.0f);
    EXPECT_EQ(StorageTraits<f16>::encode(w, w).bits, 0u);
    EXPECT_EQ(StorageTraits<float>::decode(0.0f, w), w);
    EXPECT_EQ(StorageTraits<f16>::decode(f16{}, w), w);
    EXPECT_EQ(StorageTraits<double>::decode(
                  StorageTraits<double>::encode(w, w), w),
              w);
  }
}

template <class S>
void expectQuantizationBounded() {
  // |roundtrip(f) - f| <= kEpsilon * |f - w|: the error scales with the
  // *deviation* from the shift, not with the population magnitude.
  for (int i = 0; i < D2Q9::Q; ++i) {
    const Real w = D2Q9::w[i];
    for (const Real dev : {1e-1, 1e-3, -1e-2, 3e-5, -4e-7}) {
      const Real f = w * (1 + dev);
      const Real rt = StorageTraits<S>::decode(
          StorageTraits<S>::encode(f, w), w);
      // Relative in the normal range; a fixed subnormal half ulp below it.
      const Real bound = StorageTraits<S>::kEpsilon *
                         std::max(std::abs(f - w),
                                  StorageTraits<S>::kMinNormal) *
                         1.01;
      EXPECT_LE(std::abs(rt - f), bound)
          << StorageTraits<S>::name() << " i=" << i << " dev=" << dev;
    }
  }
}

TEST(StorageTraits, QuantizationBoundedByDeviationF64) {
  expectQuantizationBounded<double>();
}
TEST(StorageTraits, QuantizationBoundedByDeviationF32) {
  expectQuantizationBounded<float>();
}
TEST(StorageTraits, QuantizationBoundedByDeviationF16) {
  expectQuantizationBounded<f16>();
}

// ---- PopulationFieldT with reduced storage -----------------------------

TEST(PopulationFieldT, IdentityStorageIgnoresShift) {
  PopulationFieldT<Real> f(Grid(4, 4, 1), D2Q9::Q);
  f.setShift(D2Q9::w);
  for (int i = 0; i < D2Q9::Q; ++i) EXPECT_EQ(f.shift(i), 0.0);
  f(0, 1, 1, 0) = 0.25;
  EXPECT_EQ(f.raw(0, 1, 1, 0), 0.25);  // raw == logical for identity
}

TEST(PopulationFieldT, ReducedStorageRoundTripsNearEquilibrium) {
  PopulationFieldT<float> f(Grid(4, 4, 1), D2Q9::Q);
  f.setShift(D2Q9::w);
  for (int i = 0; i < D2Q9::Q; ++i) {
    EXPECT_EQ(f.shift(i), D2Q9::w[i]);
    f(i, 2, 1, 0) = D2Q9::w[i];  // rest equilibrium stores exactly
    EXPECT_EQ(static_cast<Real>(f(i, 2, 1, 0)), D2Q9::w[i]);
    EXPECT_EQ(f.raw(i, 2, 1, 0), 0.0f);
    const Real v = D2Q9::w[i] * 1.001;
    f(i, 2, 1, 0) = v;
    EXPECT_NEAR(static_cast<Real>(f(i, 2, 1, 0)), v,
                StorageTraits<float>::kEpsilon * std::abs(v - D2Q9::w[i]) *
                    1.01);
  }
  EXPECT_EQ(f.elemBytes(), sizeof(float));
  EXPECT_EQ(f.bytes(),
            Grid(4, 4, 1).volume() * std::size_t(D2Q9::Q) * sizeof(float));
}

// ---- cross-precision checkpoint conversion -----------------------------

template <class A, class B>
void expectCheckpointConverts(Real tolScale) {
  const Grid g(6, 5, 1);
  PopulationFieldT<A> src(g, D2Q9::Q);
  src.setShift(D2Q9::w);
  for (int i = 0; i < D2Q9::Q; ++i)
    for (std::size_t c = 0; c < g.volume(); ++c)
      src.store(i, c, D2Q9::w[i] * (1 + 1e-3 * std::sin(Real(i + 7 * c))));

  const std::string path = tmpPath("swlb_test_precision_conv.ckpt");
  io::save_checkpoint(path, src, /*steps=*/3, /*parity=*/1);
  const io::CheckpointMeta meta = io::read_checkpoint_meta(path);
  EXPECT_EQ(meta.precisionBits, StorageTraits<A>::kBits);
  EXPECT_EQ(meta.version, io::kCheckpointVersion);

  PopulationFieldT<B> dst(g, D2Q9::Q);
  dst.setShift(D2Q9::w);
  io::load_checkpoint(path, dst);
  std::remove(path.c_str());

  Real maxErr = 0;
  for (int i = 0; i < D2Q9::Q; ++i)
    for (std::size_t c = 0; c < g.volume(); ++c)
      maxErr = std::max(maxErr,
                        std::abs(dst.load(i, c) - src.load(i, c)));
  // Converting up (f32 file -> f64 field) is exact; converting down is
  // bounded by the destination's quantization of the deviation (~1e-3*w).
  EXPECT_LE(maxErr, tolScale);
}

TEST(CheckpointConversion, F64FileIntoF32Field) {
  expectCheckpointConverts<double, float>(StorageTraits<float>::kEpsilon *
                                          2e-3);
}
TEST(CheckpointConversion, F32FileIntoF64FieldIsExact) {
  expectCheckpointConverts<float, double>(0.0);
}
TEST(CheckpointConversion, F16FileIntoF32Field) {
  expectCheckpointConverts<f16, float>(StorageTraits<f16>::kEpsilon * 2e-3);
}

TEST(CheckpointConversion, SamePrecisionRestoreIsBitwise) {
  const Grid g(5, 4, 1);
  Solver<D2Q9, float> a(g, CollisionConfig{}, Periodicity{true, true, false});
  a.initUniform(1.0, {0.02, -0.01, 0});
  a.run(4);
  const std::string path = tmpPath("swlb_test_precision_same.ckpt");
  io::save_checkpoint(path, a);

  Solver<D2Q9, float> b(g, CollisionConfig{}, Periodicity{true, true, false});
  io::load_checkpoint(path, b);
  std::remove(path.c_str());
  EXPECT_EQ(b.stepsDone(), a.stepsDone());
  EXPECT_EQ(std::memcmp(a.f().data(), b.f().data(), a.f().bytes()), 0);
}

// ---- LDM blocking gain from smaller elements ---------------------------

TEST(MaxChunkX, SmallerStorageFitsLargerBlocks) {
  const std::size_t ldm = 64u << 10;  // one CPE's scratchpad
  const int rowsY = 1;
  const int f64 = sw::max_chunk_x(ldm, rowsY, D3Q19::Q, sizeof(double));
  const int f32 = sw::max_chunk_x(ldm, rowsY, D3Q19::Q, sizeof(float));
  const int h16 = sw::max_chunk_x(ldm, rowsY, D3Q19::Q, sizeof(f16));
  EXPECT_GT(f64, 0);
  // Halving the element size nearly doubles the block that fits (the +1
  // mask byte per cell keeps it just under exactly 2x).
  EXPECT_GE(f32, (f64 * 18) / 10);
  EXPECT_GE(h16, (f32 * 18) / 10);
  // Degenerate scratchpads yield no block instead of underflowing.
  EXPECT_EQ(sw::max_chunk_x(16, rowsY, D3Q19::Q, sizeof(double)), 0);
}

// ---- f32-vs-f64 solver divergence --------------------------------------

template <class S>
Solver<D2Q9, S> runCavity(int n, Real uLid, int steps) {
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(uLid * n / 100.0));
  Solver<D2Q9, S> solver(Grid(n, n + 1, 1), cfg,
                         Periodicity{false, false, true});
  const auto lid = solver.materials().addMovingWall({uLid, 0, 0});
  solver.paint({{0, n, 0}, {n, n + 1, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(steps);
  return solver;
}

TEST(PrecisionDivergence, F32CavityTracksF64Over500Steps) {
  const int n = 32;
  const Real uLid = 0.1;
  auto ref = runCavity<Real>(n, uLid, 500);
  auto low = runCavity<float>(n, uLid, 500);
  Real maxDiff = 0;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      const auto ur = ref.velocity(x, y, 0);
      const auto ul = low.velocity(x, y, 0);
      maxDiff = std::max({maxDiff, std::abs(ur.x - ul.x),
                          std::abs(ur.y - ul.y)});
    }
  // Weight-shifted f32 storage keeps the velocity field within a small
  // multiple of single-precision roundoff of the f64 run — far below the
  // ~3.5e-3 (0.035 * uLid) discretization error budget of the Ghia
  // comparison.
  EXPECT_LT(maxDiff, 1e-4 * uLid);
  EXPECT_GT(maxDiff, 0.0);  // genuinely reduced precision, not a no-op
}

}  // namespace
}  // namespace swlb
