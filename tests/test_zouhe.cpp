// Zou-He (non-equilibrium bounce-back) boundaries: exact moment
// enforcement, pressure-driven channel flow, cross-kernel equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb {
namespace {

TEST(ZouHeFix, VelocityReconstructionEnforcesExactMoments) {
  // Start from an arbitrary state; after the fix, the cell's density must
  // equal the Zou-He closed form and the velocity the prescribed one.
  using D = D3Q19;
  Material m;
  m.cls = CellClass::ZouHeVelocity;
  m.u = {0.06, 0.01, -0.02};
  m.normal = {1, 0, 0};

  Real fin[D::Q];
  equilibria<D>(1.07, {0.01, 0.02, 0.01}, fin);
  // Perturb the knowns a little (non-equilibrium state).
  for (int i = 0; i < D::Q; ++i) fin[i] *= (1 + 0.01 * ((i * 7) % 5 - 2));

  zouhe_fix<D>(fin, m);
  Real rho;
  Vec3 mom;
  moments<D>(fin, rho, mom);
  EXPECT_NEAR(mom.x / rho, m.u.x, 1e-13);  // normal velocity exact
  // The NEBB closure (without the transverse-momentum correction) only
  // approximates the tangential components for strongly non-equilibrium
  // states; they must still land in the neighbourhood.
  EXPECT_NEAR(mom.y / rho, m.u.y, 2e-2);
  EXPECT_NEAR(mom.z / rho, m.u.z, 2e-2);
  // For an *equilibrium* incoming state the closure is exact in all
  // components.
  Real fe[D::Q];
  equilibria<D>(1.0, {0.02, 0.03, -0.01}, fe);
  zouhe_fix<D>(fe, m);
  Real rho2;
  Vec3 mom2;
  moments<D>(fe, rho2, mom2);
  EXPECT_NEAR(mom2.x / rho2, m.u.x, 1e-13);
}

TEST(ZouHeFix, PressureReconstructionEnforcesDensity) {
  using D = D2Q9;
  Material m;
  m.cls = CellClass::ZouHePressure;
  m.rho = 1.02;
  m.normal = {-1, 0, 0};  // outlet on the +x side of the domain

  Real fin[D::Q];
  equilibria<D>(0.99, {0.05, 0.005, 0}, fin);
  zouhe_fix<D>(fin, m);
  Real rho;
  Vec3 mom;
  moments<D>(fin, rho, mom);
  EXPECT_NEAR(rho, 1.02, 1e-13);
}

TEST(ZouHePoiseuille, PressureDrivenChannelMatchesAnalytic) {
  // The classic Zou-He validation: a 2-D channel driven by a density
  // (pressure) difference between inlet and outlet develops the parabola
  //   u(y) = G/(2 nu) * y (H - y),  G = cs^2 (rho_in - rho_out) / L.
  const int nx = 32, ny = 16;
  const Real tau = 0.9;
  const Real nu = viscosity_from_tau(tau);
  const Real drho = 0.02;

  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau);
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, false, true});
  const auto in = solver.materials().addZouHePressure(1.0 + drho, {1, 0, 0});
  const auto out = solver.materials().addZouHePressure(1.0, {-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, in);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, out);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(20000);

  // Pressure gradient acts over the distance between the BC nodes.
  const Real G = kCs2 * drho / (nx - 1);
  const Real H = ny;
  Real maxErr = 0, maxU = 0;
  for (int y = 0; y < ny; ++y) {
    const Real yw = y + 0.5;
    const Real expected = G / (2 * nu) * yw * (H - yw);
    const Real got = solver.velocity(nx / 2, y, 0).x;
    maxErr = std::max(maxErr, std::abs(got - expected));
    maxU = std::max(maxU, expected);
  }
  EXPECT_LT(maxErr / maxU, 0.03);
  // Density decreases linearly along the channel.
  EXPECT_GT(solver.density(1, ny / 2, 0), solver.density(nx - 2, ny / 2, 0));
}

TEST(ZouHeChannel, VelocityInletDrivesPlugFlowExactly) {
  // ZH velocity inlet + ZH pressure outlet with free-slip-free geometry
  // (periodic y): a uniform plug must pass through unchanged, with the
  // inlet velocity enforced exactly at the boundary nodes.
  const int nx = 24, ny = 8;
  const Real uIn = 0.05;
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, true, true});
  const auto in = solver.materials().addZouHeVelocity({uIn, 0, 0}, {1, 0, 0});
  const auto out = solver.materials().addZouHePressure(1.0, {-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, in);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, out);
  solver.finalizeMask();
  solver.initUniform(1.0, {uIn, 0, 0});
  solver.run(3000);

  EXPECT_NEAR(solver.velocity(0, 2, 0).x, uIn, 1e-10);  // exact at the node
  for (int x = 1; x < nx - 1; ++x)
    EXPECT_NEAR(solver.velocity(x, 3, 0).x, uIn, 2e-3) << "x=" << x;
  EXPECT_NEAR(solver.density(nx - 1, 4, 0), 1.0, 1e-10);
}

TEST(ZouHeEquivalence, AllPullKernelsAgreeBitwise) {
  // Generic, fused, two-step and the emulated CPE kernel must produce
  // identical fields with Zou-He boundaries in the domain.
  using D = D3Q19;
  const int nx = 12, ny = 10, nz = 6;
  Grid grid(nx, ny, nz);
  MaterialTable mats;
  const auto in = mats.addZouHeVelocity({0.04, 0, 0}, {1, 0, 0});
  const auto out = mats.addZouHePressure(1.0, {-1, 0, 0});
  MaskField mask(grid, MaterialTable::kFluid);
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y) {
      mask(0, y, z) = in;
      mask(nx - 1, y, z) = out;
    }
  const Periodicity per{false, true, true};
  fill_halo_mask(mask, per, MaterialTable::kSolid);

  PopulationField src(grid, D::Q);
  Real feq[D::Q];
  for (int z = -1; z <= nz; ++z)
    for (int y = -1; y <= ny; ++y)
      for (int x = -1; x <= nx; ++x) {
        equilibria<D>(1.0 + 0.001 * ((x + 2 * y + 3 * z) % 7),
                      {0.03, 0.002 * (y % 3), 0}, feq);
        for (int i = 0; i < D::Q; ++i) src(i, x, y, z) = feq[i];
      }
  apply_periodic(src, per);

  CollisionConfig cfg;
  cfg.omega = 1.4;
  PopulationField a(grid, D::Q), b(grid, D::Q), c(grid, D::Q), d(grid, D::Q);
  stream_collide_fused<D>(src, a, mask, mats, cfg, grid.interior());
  stream_collide_generic<D>(src, b, mask, mats, cfg, grid.interior());
  stream_only<D>(src, c, mask, mats, grid.interior());
  collide_inplace<D>(c, mask, mats, cfg, grid.interior());

  sw::CpeCluster cluster(sw::MachineSpec::sw26010().cg);
  sw::SwKernelConfig swCfg;
  swCfg.collision = cfg;
  swCfg.chunkX = 12;
  sw::sw_stream_collide<D>(cluster, src, d, mask, mats, swCfg);

  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < nz; ++z)
      for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x) {
          ASSERT_EQ(a(q, x, y, z), b(q, x, y, z)) << "fused vs generic";
          ASSERT_EQ(a(q, x, y, z), c(q, x, y, z)) << "fused vs two-step";
          ASSERT_EQ(a(q, x, y, z), d(q, x, y, z)) << "fused vs CPE emulator";
        }
}

TEST(ZouHeMass, ChannelReachesSteadyThroughput) {
  // Inflow mass flux equals outflow mass flux at steady state.
  const int nx = 20, ny = 8;
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, true, true});
  const auto in = solver.materials().addZouHeVelocity({0.04, 0, 0}, {1, 0, 0});
  const auto out = solver.materials().addZouHePressure(1.0, {-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, in);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, out);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.04, 0, 0});
  solver.run(4000);

  auto flux = [&](int x) {
    Real f = 0;
    for (int y = 0; y < ny; ++y) {
      Real rho;
      Vec3 u;
      cell_macroscopic<D2Q9>(solver.f(), x, y, 0, solver.collision(), rho, u);
      f += rho * u.x;
    }
    return f;
  };
  EXPECT_NEAR(flux(1), flux(nx - 2), 1e-5 * std::abs(flux(1)));
}

}  // namespace
}  // namespace swlb
