// Sunway substrate emulator: LDM arena, metered DMA, register/RMA
// fabrics, CPE cluster.
#include <gtest/gtest.h>

#include "sw/cpe.hpp"

namespace swlb::sw {
namespace {

// ---------------------------------------------------------------------- LDM

TEST(LdmTest, AllocatesWithinCapacity) {
  Ldm ldm(1024);
  auto a = ldm.alloc<Real>(64, "a");  // 512 B
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(ldm.used(), 512u);
  auto b = ldm.alloc<std::uint8_t>(512, "b");
  EXPECT_EQ(b.size(), 512u);
  EXPECT_EQ(ldm.freeBytes(), 0u);
}

TEST(LdmTest, OverflowIsAHardError) {
  Ldm ldm(64 * 1024);  // one SW26010 CPE
  EXPECT_THROW(ldm.alloc<Real>(64 * 1024 / 8 + 1, "too big"), Error);
  // A D3Q19 row plan that fits on SW26010-Pro but not on SW26010:
  Ldm pro(256 * 1024);
  EXPECT_NO_THROW(pro.alloc<Real>(3 * 3 * 19 * 130, "pro window"));
  Ldm light(64 * 1024);
  EXPECT_THROW(light.alloc<Real>(3 * 3 * 19 * 130, "light window"), Error);
}

TEST(LdmTest, ResetReclaimsEverythingAndTracksHighWater) {
  Ldm ldm(1000);
  ldm.alloc<std::uint8_t>(900, "x");
  ldm.reset();
  EXPECT_EQ(ldm.used(), 0u);
  EXPECT_EQ(ldm.highWater(), 900u);
  auto y = ldm.alloc<std::uint8_t>(1000, "y");
  EXPECT_EQ(y.size(), 1000u);
  EXPECT_EQ(ldm.highWater(), 1000u);
}

TEST(LdmTest, RespectsAlignment) {
  Ldm ldm(1024);
  ldm.alloc<std::uint8_t>(3, "odd");
  auto d = ldm.alloc<double>(4, "aligned");
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
}

// ---------------------------------------------------------------------- DMA

TEST(DmaTest, GetPutMoveDataAndMeter) {
  DmaModel model{32.0 * (1ull << 30), 1e-7};
  DmaEngine dma(model);
  std::vector<Real> mem(100, 7.5);
  Ldm ldm(8192);
  auto buf = ldm.alloc<Real>(100, "buf");
  dma.get(mem.data(), buf);
  EXPECT_EQ(buf[99], 7.5);
  for (auto& v : buf) v = 2.0;
  dma.put(mem.data(), std::span<const Real>(buf.data(), buf.size()));
  EXPECT_EQ(mem[0], 2.0);
  EXPECT_EQ(dma.stats().getTransactions, 1u);
  EXPECT_EQ(dma.stats().putTransactions, 1u);
  EXPECT_EQ(dma.stats().bytes(), 2 * 100 * sizeof(Real));
}

TEST(DmaTest, StridedTransfersCostOneTransactionPerRow) {
  DmaEngine dma(DmaModel{1e9, 1e-7});
  std::vector<Real> mem(1000);
  for (int i = 0; i < 1000; ++i) mem[static_cast<std::size_t>(i)] = i;
  Ldm ldm(8192);
  auto buf = ldm.alloc<Real>(40, "tile");
  dma.getStrided(mem.data(), /*stride=*/100, /*rows=*/4, /*rowElems=*/10, buf);
  EXPECT_EQ(dma.stats().getTransactions, 4u);
  EXPECT_EQ(buf[10], 100.0);  // second row starts at mem[100]
  EXPECT_EQ(buf[39], 309.0);
}

TEST(DmaTest, SmallTransfersWasteBandwidth) {
  // The latency/bandwidth model is what punishes AoS/per-cell access
  // (paper §III-C): 8-byte transfers see a tiny effective bandwidth.
  DmaModel model{32.0 * (1ull << 30), 1e-7};
  EXPECT_LT(model.effectiveBandwidth(8), 0.01 * model.peakBandwidth);
  EXPECT_GT(model.effectiveBandwidth(1 << 20), 0.9 * model.peakBandwidth);
  // Monotone in transfer size.
  double prev = 0;
  for (std::size_t b = 8; b <= (1u << 22); b *= 2) {
    const double bw = model.effectiveBandwidth(b);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(DmaTest, ModeledSecondsMatchClosedForm) {
  DmaModel model{1e9, 1e-6};
  DmaEngine dma(model);
  std::vector<Real> mem(125);
  Ldm ldm(8192);
  auto buf = ldm.alloc<Real>(125, "b");
  dma.get(mem.data(), buf);
  dma.get(mem.data(), buf);
  EXPECT_NEAR(dma.modeledSeconds(), 2 * 1e-6 + 2 * 1000.0 / 1e9, 1e-12);
}

// ------------------------------------------------------------------ fabrics

TEST(RegComm, TopologyIsRowOrColumnOnly) {
  RegCommFabric f(8, 8);
  EXPECT_TRUE(f.reachable(0, 7));    // same row
  EXPECT_TRUE(f.reachable(0, 56));   // same column
  EXPECT_TRUE(f.reachable(9, 9));    // itself
  EXPECT_FALSE(f.reachable(7, 8));   // row 0 col 7 vs row 1 col 0
  EXPECT_FALSE(f.reachable(0, 9));   // diagonal
}

TEST(RegComm, TransferCopiesAndMetersPackets) {
  RegCommFabric f(8, 8);
  std::vector<Real> in(10, 3.0), out(10, 0.0);
  f.transfer(1, 2, std::span<const Real>(in), std::span<Real>(out));
  EXPECT_EQ(out[9], 3.0);
  EXPECT_EQ(f.stats().bytes, 80u);
  EXPECT_EQ(f.stats().packets, (80u + 31) / 32);  // 256-bit packets
}

TEST(RegComm, OffBusTransferThrows) {
  RegCommFabric f(8, 8);
  std::vector<Real> in(4), out(4);
  EXPECT_THROW(f.transfer(0, 9, std::span<const Real>(in), std::span<Real>(out)),
               Error);
}

TEST(Rma, AnyPairReachableAndMetered) {
  RmaFabric f(8, 8);
  std::vector<Real> in(6, -1.5), out(6, 0.0);
  f.put(0, 9, std::span<const Real>(in),
        std::span<Real>(out));  // diagonal pair: fine on SW26010-Pro
  EXPECT_EQ(out[5], -1.5);
  EXPECT_EQ(f.stats().bytes, 48u);
  std::vector<Real> got(6, 0.0);
  f.get(63, 0, std::span<const Real>(in), std::span<Real>(got));
  EXPECT_EQ(got[0], -1.5);
}

// ------------------------------------------------------------------ cluster

TEST(CpeClusterTest, SpansAll64CpesWithMeshCoordinates) {
  CpeCluster cluster(MachineSpec::sw26010().cg);
  int visits = 0;
  cluster.run([&](CpeContext& ctx) {
    EXPECT_EQ(ctx.id, ctx.row * 8 + ctx.col);
    EXPECT_EQ(ctx.count, 64);
    EXPECT_NE(ctx.ldm, nullptr);
    EXPECT_NE(ctx.dma, nullptr);
    EXPECT_NE(ctx.reg, nullptr);   // SW26010 has register communication
    EXPECT_EQ(ctx.rma, nullptr);   // ... but no RMA
    ++visits;
  });
  EXPECT_EQ(visits, 64);
}

TEST(CpeClusterTest, ProExposesRmaInsteadOfRegComm) {
  CpeCluster cluster(MachineSpec::sw26010pro().cg);
  cluster.run([&](CpeContext& ctx) {
    EXPECT_EQ(ctx.reg, nullptr);
    EXPECT_NE(ctx.rma, nullptr);
    EXPECT_EQ(ctx.ldm->capacity(), 256u * 1024);
  });
}

TEST(CpeClusterTest, AggregatesDmaAcrossCpes) {
  CpeCluster cluster(MachineSpec::sw26010().cg);
  std::vector<Real> mem(64);
  cluster.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm->alloc<Real>(1, "v");
    ctx.dma->get(mem.data() + ctx.id, buf);
  });
  EXPECT_EQ(cluster.dmaTotal().getTransactions, 64u);
  EXPECT_EQ(cluster.dmaTotal().getBytes, 64 * sizeof(Real));
  EXPECT_GT(cluster.dmaModeledSeconds(), 64 * 1e-7 * 0.99);
  cluster.resetStats();
  EXPECT_EQ(cluster.dmaTotal().transactions(), 0u);
}

TEST(CpeClusterTest, LdmResetBetweenRunsAndHighWaterKept) {
  CpeCluster cluster(MachineSpec::sw26010().cg);
  cluster.run([&](CpeContext& ctx) { ctx.ldm->alloc<Real>(1000, "big"); });
  cluster.run([&](CpeContext& ctx) { EXPECT_EQ(ctx.ldm->used(), 0u); });
  EXPECT_EQ(cluster.ldmHighWater(), 8000u);
}

// --------------------------------------------------------------------- spec

TEST(SpecTest, PaperHeadlineNumbers) {
  const MachineSpec tl = MachineSpec::sw26010();
  // SW26010: 4 CGs, 64 CPEs each, 64 KB LDM, 32 GB/s DMA per CG.
  EXPECT_EQ(tl.coreGroupsPerProcessor, 4);
  EXPECT_EQ(tl.cg.cpeCount(), 64);
  EXPECT_EQ(tl.cg.ldmBytes, 64u * 1024);
  EXPECT_NEAR(tl.cg.dma.peakBandwidth, 32.0 * (1ull << 30), 1);
  // ~3.06 TFlops per processor (paper §III-B).
  EXPECT_NEAR(tl.processorPeakFlops(), 3.06e12, 0.1e12);

  const MachineSpec pro = MachineSpec::sw26010pro();
  EXPECT_EQ(pro.coreGroupsPerProcessor, 6);
  EXPECT_EQ(pro.cg.ldmBytes, 256u * 1024);
  // 307.2 GB/s aggregate = 51.2 GB/s per CG.
  EXPECT_NEAR(pro.cg.dma.peakBandwidth * 6, 307.2e9, 1e6);
  // ~14 TFlops per processor at FP64.
  EXPECT_NEAR(pro.processorPeakFlops(), 14.03e12, 0.3e12);
  EXPECT_TRUE(pro.cg.hasRma);
  EXPECT_FALSE(pro.cg.hasRegisterComm);
}

}  // namespace
}  // namespace swlb::sw
