// Kernel-conformance harness (DESIGN.md §11): the contract every
// stream/collide variant — and every future backend — must satisfy
// against the production fused pull kernel.
//
//   * f64 identity storage: bit-identical populations after every step.
//   * Same reduced storage (f32/f16): still bit-identical (the variants
//     run the same Real expression trees between decode and encode).
//   * Reduced vs f64: agreement within a quantization bound that grows
//     linearly in steps (StorageTraits<S>::kEpsilon per encode).
//
// Comparisons go through Solver::population(), the canonical post-stream
// accessor, so in-place variants whose raw layout rotates (Esoteric) are
// compared in natural order at every phase.  Solid/MovingWall cells are
// excluded: their storage is a scratch mailbox under in-place streaming.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "core/precision.hpp"
#include "core/solver.hpp"

namespace swlb::conformance {

/// One mask/boundary pattern the harness drives every variant through.
/// `paint` works on the raw mask/material table so it is independent of
/// the solver's storage type.
struct Scenario {
  std::string name;
  Int3 extent{7, 5, 3};  ///< odd, non-vector-width extents by default
  Periodicity periodic{true, true, true};
  std::function<void(MaskField&, MaterialTable&, const Grid&)> paint;
  bool hasOutflow = false;  ///< Esoteric rejects Outflow; skip it there
};

/// Deterministic smooth non-equilibrium-free init (same field for every
/// solver under test; no RNG so failures reproduce exactly).
template <class D, class S>
void initSmooth(Solver<D, S>& s) {
  s.initField([](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.03 * std::sin(0.7 * x + 0.3) * std::cos(0.5 * y + 0.1) *
                    std::cos(0.4 * z + 0.2);
    u = {0.02 * std::sin(0.5 * x + 0.1), 0.015 * std::cos(0.6 * y + 0.2),
         0.01 * std::sin(0.3 * z + 0.4)};
  });
}

template <class D, class S>
Solver<D, S> makeSolver(const Scenario& sc) {
  CollisionConfig cc;
  cc.omega = 1.7;
  const Grid g(sc.extent.x, sc.extent.y, sc.extent.z);
  Solver<D, S> solver(g, cc, sc.periodic);
  if (sc.paint) sc.paint(solver.mask(), solver.materials(), g);
  return solver;
}

/// Compare canonical populations over the interior (excluding wall-class
/// cells).  tol == 0 demands bitwise equality; otherwise absolute
/// difference <= tol per population.  Fails once with the worst offender
/// so a mismatch doesn't produce thousands of assertions.
template <class D, class SA, class SB>
void expectEquivalent(const Solver<D, SA>& a, const Solver<D, SB>& b,
                      double tol, const std::string& what) {
  const Grid& g = a.grid();
  const MaskField& mask = a.mask();
  const MaterialTable& mats = a.materials();
  double worst = 0;
  int wx = 0, wy = 0, wz = 0, wi = 0;
  long long bad = 0;
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        const CellClass cls = mats[mask(x, y, z)].cls;
        if (cls == CellClass::Solid || cls == CellClass::MovingWall) continue;
        for (int i = 0; i < D::Q; ++i) {
          const Real va = a.population(i, x, y, z);
          const Real vb = b.population(i, x, y, z);
          const double diff = std::abs(static_cast<double>(va - vb));
          const bool miss = tol == 0 ? va != vb : diff > tol;
          if (miss) {
            ++bad;
            if (diff >= worst) {
              worst = diff;
              wx = x; wy = y; wz = z; wi = i;
            }
          }
        }
      }
  EXPECT_EQ(bad, 0) << what << ": " << bad << " populations differ, worst |d|="
                    << worst << " at i=" << wi << " (" << wx << "," << wy
                    << "," << wz << "), tol=" << tol;
}

/// Drive backend `name` in lockstep with the fused reference for `steps`
/// steps of the same scenario/init, comparing canonical populations after
/// every step (so odd/rotated phases of in-place backends are covered
/// too).  SREF/SSUT may differ to probe reduced-precision quantization
/// bounds.
template <class D, class SREF, class SSUT>
void runLockstep(const Scenario& sc, const std::string& name, int steps,
                 double tol) {
  SCOPED_TRACE(sc.name + " backend=" + name);
  Solver<D, SREF> ref = makeSolver<D, SREF>(sc);
  Solver<D, SSUT> sut = makeSolver<D, SSUT>(sc);
  sut.setBackend(name);
  ref.finalizeMask();
  sut.finalizeMask();
  initSmooth(ref);
  initSmooth(sut);
  for (int s = 0; s < steps; ++s) {
    ref.step();
    sut.step();
    expectEquivalent<D>(ref, sut, tol,
                        sc.name + "/" + name + " step " +
                            std::to_string(s + 1));
    if (::testing::Test::HasFailure()) return;  // first bad step suffices
  }
}

template <class D, class SREF, class SSUT>
void runLockstep(const Scenario& sc, KernelVariant variant, int steps,
                 double tol) {
  runLockstep<D, SREF, SSUT>(sc, kernel_variant_name(variant), steps, tol);
}

/// Closed-box mass conservation: total fluid mass after `steps` equals the
/// initial mass to within accumulated f64 rounding.
template <class D, class S>
void expectMassConserved(const Scenario& sc, const std::string& name,
                         int steps) {
  SCOPED_TRACE(sc.name + " mass backend=" + name);
  Solver<D, S> s = makeSolver<D, S>(sc);
  s.setBackend(name);
  s.finalizeMask();
  initSmooth(s);
  const Real m0 = s.totalMass();
  for (int i = 0; i < steps; ++i) s.step();
  EXPECT_NEAR(s.totalMass() / m0, 1.0, 1e-12);
}

template <class D, class S>
void expectMassConserved(const Scenario& sc, KernelVariant variant,
                         int steps) {
  expectMassConserved<D, S>(sc, kernel_variant_name(variant), steps);
}

/// Registry-driven conformance: run every backend registered for (D, S)
/// through `sc`, holding each to exactly what its capability flags
/// promise — bit-identity to fused where caps.bitIdentical, a
/// quantization bound otherwise; lockstep trajectories only where
/// caps.stepConformant (push-style backends are checked via closed-box
/// mass conservation instead); Outflow scenarios skipped where
/// caps.supportsOutflow is off.  A backend added to the registry is
/// covered here with no test changes — and one whose flags overpromise
/// fails here.
template <class D, class S>
void runRegisteredBackends(const Scenario& sc, int steps) {
  for (const std::string& name : backend_names<D, S>()) {
    if (name == "fused") continue;  // the reference itself
    const BackendInfo& info = *find_backend_info(name);
    if (sc.hasOutflow && !info.caps.supportsOutflow) continue;
    if (!info.caps.stepConformant) {
      if (!sc.periodic.x && !sc.periodic.y && !sc.periodic.z)
        expectMassConserved<D, S>(sc, name, steps);
      continue;
    }
    const double tol =
        info.caps.bitIdentical ? 0.0
                               : 64.0 * StorageTraits<S>::kEpsilon * steps;
    runLockstep<D, S, S>(sc, name, steps, tol);
  }
}

}  // namespace swlb::conformance
