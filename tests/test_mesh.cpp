// Geometry generators, STL round trips, voxelizer, terrain, urban layout.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>

#include "core/boundary.hpp"
#include "mesh/stl.hpp"
#include "mesh/terrain.hpp"
#include "mesh/urban.hpp"
#include "mesh/voxelizer.hpp"

namespace swlb::mesh {
namespace {

namespace fs = std::filesystem;

std::string tmpPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ------------------------------------------------------------- geometry

TEST(Geometry, TriangleNormalAndArea) {
  Triangle t{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(t.normal(), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(t.area(), 0.5);
  Triangle degenerate{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};
  EXPECT_DOUBLE_EQ(degenerate.area(), 0.0);
}

TEST(Geometry, BoxHasTwelveOutwardTriangles) {
  const TriangleMesh box = make_box({0, 0, 0}, {2, 3, 4});
  EXPECT_EQ(box.size(), 12u);
  const Bounds b = box.bounds();
  EXPECT_EQ(b.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(b.hi, (Vec3{2, 3, 4}));
  // Surface area: 2*(2*3 + 3*4 + 2*4) = 52.
  EXPECT_NEAR(box.surfaceArea(), 52.0, 1e-12);
  // Outward orientation: every normal points away from the centre.
  const Vec3 c = b.center();
  for (const auto& t : box.triangles()) {
    const Vec3 mid = (t.a + t.b + t.c) * (1.0 / 3.0);
    EXPECT_GT(t.normal().dot(mid - c), 0.0);
  }
}

TEST(Geometry, SphereAreaConvergesToAnalytic) {
  const Real r = 1.5;
  const TriangleMesh s = make_sphere({0, 0, 0}, r, 48, 24);
  const Real analytic = 4 * std::numbers::pi_v<Real> * r * r;
  EXPECT_NEAR(s.surfaceArea(), analytic, 0.01 * analytic);
}

TEST(Geometry, CylinderAreaMatchesAnalytic) {
  const Real r = 1.0, h = 3.0;
  const TriangleMesh c = make_cylinder({0, 0, 0}, r, h, 64);
  const Real analytic =
      2 * std::numbers::pi_v<Real> * r * h + 2 * std::numbers::pi_v<Real> * r * r;
  EXPECT_NEAR(c.surfaceArea(), analytic, 0.01 * analytic);
}

TEST(Geometry, TransformsComposeCorrectly) {
  TriangleMesh box = make_box({0, 0, 0}, {1, 1, 1});
  box.scale(2.0).translate({10, 0, 0});
  const Bounds b = box.bounds();
  EXPECT_EQ(b.lo, (Vec3{10, 0, 0}));
  EXPECT_EQ(b.hi, (Vec3{12, 2, 2}));
}

TEST(Geometry, SuboffProfileShape) {
  // Closed nose, parallel midbody at full radius, tapered stern.
  EXPECT_NEAR(suboff_profile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(suboff_profile(0.4), 1.0, 1e-12);
  EXPECT_NEAR(suboff_profile(0.6), 1.0, 1e-12);
  EXPECT_LT(suboff_profile(0.95), 0.4);
  EXPECT_GE(suboff_profile(1.0), 0.0);
  // Monotone rise along the bow, monotone fall along the stern.
  for (Real t = 0.01; t < 0.23; t += 0.02)
    EXPECT_GE(suboff_profile(t + 0.01), suboff_profile(t));
  for (Real t = 0.72; t < 0.99; t += 0.02)
    EXPECT_LE(suboff_profile(t + 0.01), suboff_profile(t));
}

TEST(Geometry, RevolutionBodyBoundsMatchProfile) {
  const TriangleMesh hull = make_suboff(100.0, 10.0);
  const Bounds b = hull.bounds();
  EXPECT_NEAR(b.lo.x, 0.0, 1e-9);
  EXPECT_NEAR(b.hi.x, 100.0, 1e-9);
  EXPECT_NEAR(b.hi.y, 10.0, 0.2);
  EXPECT_NEAR(b.lo.y, -10.0, 0.2);
}

TEST(Geometry, RevolutionRejectsDegenerateParameters) {
  EXPECT_THROW(make_revolution(1.0, [](Real) { return 1.0; }, 1, 8), Error);
  EXPECT_THROW(make_revolution(1.0, [](Real) { return 1.0; }, 8, 2), Error);
}

// ------------------------------------------------------------------ STL

TEST(Stl, BinaryRoundTripPreservesGeometry) {
  const TriangleMesh mesh = make_sphere({1, 2, 3}, 0.5, 12, 6);
  const std::string path = tmpPath("swlb_test_sphere.stl");
  write_stl_binary(path, mesh);
  const TriangleMesh back = read_stl(path);
  ASSERT_EQ(back.size(), mesh.size());
  // float32 storage: ~1e-6 relative accuracy.
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    EXPECT_NEAR(back.triangles()[i].a.x, mesh.triangles()[i].a.x, 1e-5);
    EXPECT_NEAR(back.triangles()[i].c.z, mesh.triangles()[i].c.z, 1e-5);
  }
  std::remove(path.c_str());
}

TEST(Stl, AsciiRoundTripPreservesGeometry) {
  const TriangleMesh mesh = make_box({0, 0, 0}, {1, 2, 3});
  const std::string path = tmpPath("swlb_test_box.stl");
  write_stl_ascii(path, mesh, "box");
  const TriangleMesh back = read_stl(path);
  ASSERT_EQ(back.size(), 12u);
  EXPECT_NEAR(back.surfaceArea(), mesh.surfaceArea(), 1e-6);
  std::remove(path.c_str());
}

TEST(Stl, AutodetectDistinguishesFormats) {
  const TriangleMesh mesh = make_box({0, 0, 0}, {1, 1, 1});
  const std::string pa = tmpPath("swlb_fmt_a.stl");
  const std::string pb = tmpPath("swlb_fmt_b.stl");
  write_stl_ascii(pa, mesh);
  write_stl_binary(pb, mesh);
  EXPECT_EQ(read_stl(pa).size(), 12u);
  EXPECT_EQ(read_stl(pb).size(), 12u);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(Stl, MissingAndMalformedFilesThrow) {
  EXPECT_THROW(read_stl(tmpPath("swlb_does_not_exist.stl")), Error);
  const std::string path = tmpPath("swlb_bad.stl");
  {
    std::ofstream os(path);
    os << "solid junk\nfacet vertex oops\n";
  }
  EXPECT_THROW(read_stl(path), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ voxelizer

TEST(Voxelizer, RayTriangleIntersectionBasics) {
  Triangle t{{2, 0, 0}, {2, 4, 0}, {2, 0, 4}};
  EXPECT_NEAR(ray_x_triangle({0, 1, 1}, t), 2.0, 1e-12);
  EXPECT_LT(ray_x_triangle({0, 3.5, 3.5}, t), 0.0);  // outside the triangle
  Triangle parallel{{0, 0, 0}, {1, 0, 0}, {0.5, 0, 1}};
  EXPECT_LT(ray_x_triangle({0, 1, 0.2}, parallel), 0.0);
}

TEST(Voxelizer, SolidBoxFillsExpectedVolume) {
  const TriangleMesh box = make_box({2, 2, 2}, {6, 6, 6});
  const VoxelGrid g = voxelize(box, {8, 8, 8}, {0, 0, 0}, 1.0);
  EXPECT_EQ(g.solidCount(), 4LL * 4 * 4);
  EXPECT_TRUE(g.at(3, 3, 3));
  EXPECT_FALSE(g.at(1, 3, 3));
  EXPECT_FALSE(g.at(6, 6, 6));
}

TEST(Voxelizer, SphereVolumeApproximatesAnalytic) {
  const Real r = 10.0;
  const TriangleMesh s = make_sphere({16, 16, 16}, r, 48, 24);
  const VoxelGrid g = voxelize(s, {32, 32, 32}, {0, 0, 0}, 1.0);
  const double analytic = 4.0 / 3.0 * std::numbers::pi * r * r * r;
  EXPECT_NEAR(static_cast<double>(g.solidCount()), analytic, 0.05 * analytic);
}

TEST(Voxelizer, FitModePlacesMeshInsideGrid) {
  const TriangleMesh hull = make_suboff(50.0, 5.0);
  const VoxelGrid g = voxelize_fit(hull, {64, 16, 16}, 2);
  EXPECT_GT(g.solidCount(), 0);
  // Padding ring stays empty.
  for (int z = 0; z < 16; ++z)
    for (int y = 0; y < 16; ++y) {
      EXPECT_FALSE(g.at(0, y, z));
      EXPECT_FALSE(g.at(63, y, z));
    }
}

TEST(Voxelizer, PaintTransfersSolidsIntoMask) {
  const TriangleMesh box = make_box({1, 1, 1}, {3, 3, 3});
  const VoxelGrid g = voxelize(box, {4, 4, 4}, {0, 0, 0}, 1.0);
  Grid lattice(10, 10, 10);
  MaskField mask(lattice, swlb::MaterialTable::kFluid);
  g.paint(mask, swlb::MaterialTable::kSolid, {2, 3, 4});
  EXPECT_EQ(mask(3, 4, 5), swlb::MaterialTable::kSolid);
  EXPECT_EQ(mask(1, 1, 1), swlb::MaterialTable::kFluid);
  int solids = 0;
  for (int z = 0; z < 10; ++z)
    for (int y = 0; y < 10; ++y)
      for (int x = 0; x < 10; ++x)
        if (mask(x, y, z) == swlb::MaterialTable::kSolid) ++solids;
  EXPECT_EQ(solids, 8);
}

TEST(Voxelizer, RejectsBadArguments) {
  const TriangleMesh box = make_box({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(voxelize(box, {0, 4, 4}, {0, 0, 0}, 1.0), Error);
  EXPECT_THROW(voxelize(box, {4, 4, 4}, {0, 0, 0}, 0.0), Error);
  EXPECT_THROW(voxelize_fit(TriangleMesh{}, {8, 8, 8}), Error);
}

TEST(Voxelizer, CellCentersAndWorldMapping) {
  VoxelGrid g({4, 4, 4}, {10, 20, 30}, 0.5);
  const Vec3 c = g.cellCenter(0, 0, 0);
  EXPECT_NEAR(c.x, 10.25, 1e-12);
  EXPECT_NEAR(c.y, 20.25, 1e-12);
  EXPECT_NEAR(c.z, 30.25, 1e-12);
  EXPECT_EQ(g.solidCount(), 0);
  g.set(3, 3, 3, true);
  EXPECT_EQ(g.solidCount(), 1);
  g.set(3, 3, 3, false);
  EXPECT_EQ(g.solidCount(), 0);
}

TEST(Voxelizer, SuboffHullIsWatertightUnderParityCounting) {
  // A watertight surface voxelizes to a solid region with no stray cells
  // outside the hull's bounding box and a plausible volume fraction.
  const mesh::TriangleMesh hull = make_suboff(60.0, 6.0, 64, 32);
  const VoxelGrid g = voxelize(hull, {64, 16, 16}, {-2, -8, -8}, 1.0);
  const Bounds b = hull.bounds();
  long long outside = 0;
  for (int z = 0; z < 16; ++z)
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 64; ++x) {
        if (!g.at(x, y, z)) continue;
        const Vec3 c = g.cellCenter(x, y, z);
        if (c.x < b.lo.x - 0.5 || c.x > b.hi.x + 0.5 || c.y < b.lo.y - 0.5 ||
            c.y > b.hi.y + 0.5 || c.z < b.lo.z - 0.5 || c.z > b.hi.z + 0.5)
          ++outside;
      }
  EXPECT_EQ(outside, 0);
  // Volume between a cylinder of max radius and a thin rod.
  const double cylinderVol = std::numbers::pi * 6 * 6 * 60;
  EXPECT_GT(static_cast<double>(g.solidCount()), 0.3 * cylinderVol);
  EXPECT_LT(static_cast<double>(g.solidCount()), 1.0 * cylinderVol);
}

// -------------------------------------------------------------- terrain

TEST(Terrain, RollingTerrainIsBoundedAndVaried) {
  const Heightmap hm = make_rolling_terrain(64, 48, 12.0, 3);
  EXPECT_GE(hm.minHeight(), 0.0);
  EXPECT_LE(hm.maxHeight(), 12.0 + 1e-9);
  EXPECT_GT(hm.maxHeight() - hm.minHeight(), 1.0);  // not flat
}

TEST(Terrain, PaintFillsBelowSurface) {
  Heightmap hm(8, 8, 0);
  hm.fill([](int x, int) { return static_cast<Real>(x); });
  Grid g(8, 8, 8);
  MaskField mask(g, swlb::MaterialTable::kFluid);
  hm.paint(mask, swlb::MaterialTable::kSolid);
  EXPECT_EQ(mask(0, 0, 0), swlb::MaterialTable::kFluid);  // height 0: nothing
  EXPECT_EQ(mask(4, 0, 3), swlb::MaterialTable::kSolid);
  EXPECT_EQ(mask(4, 0, 4), swlb::MaterialTable::kFluid);
  EXPECT_EQ(mask(7, 7, 6), swlb::MaterialTable::kSolid);
}

TEST(Terrain, DeterministicForFixedSeed) {
  const Heightmap a = make_rolling_terrain(32, 32, 5.0, 9);
  const Heightmap b = make_rolling_terrain(32, 32, 5.0, 9);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) EXPECT_EQ(a.at(x, y), b.at(x, y));
}

// ---------------------------------------------------------------- urban

TEST(Urban, GeneratesStreetGridWithBuildings) {
  UrbanConfig cfg;
  cfg.blockCells = 8;
  cfg.streetCells = 4;
  cfg.buildProbability = 1.0;
  const Heightmap city = make_urban_heightmap(96, 96, cfg);
  const UrbanStats stats = analyze_urban(city);
  EXPECT_EQ(stats.buildings, 8 * 8);  // 96 / 12 lots each way
  EXPECT_GE(stats.tallest, cfg.minHeight);
  EXPECT_LE(stats.tallest, cfg.maxHeight);
  // Streets stay open: built fraction well below 1.
  EXPECT_GT(stats.builtFraction, 0.2);
  EXPECT_LT(stats.builtFraction, 0.6);
  // A street row between the first two building rows is empty.
  EXPECT_EQ(city.at(0, 0), 0.0);
}

TEST(Urban, BuildProbabilityLeavesEmptyLots) {
  UrbanConfig all;
  all.buildProbability = 1.0;
  UrbanConfig some;
  some.buildProbability = 0.5;
  const UrbanStats a = analyze_urban(make_urban_heightmap(120, 120, all));
  const UrbanStats s = analyze_urban(make_urban_heightmap(120, 120, some));
  EXPECT_LT(s.buildings, a.buildings);
  EXPECT_GT(s.buildings, 0);
}

TEST(Urban, RejectsInvalidConfig) {
  UrbanConfig bad;
  bad.blockCells = 0;
  EXPECT_THROW(make_urban_heightmap(32, 32, bad), Error);
}

}  // namespace
}  // namespace swlb::mesh
