// Performance model: the reproduced numbers must match the paper's §V
// analysis (roofline bounds, utilization) and the scaling/ladder shapes.
#include <gtest/gtest.h>

#include "perf/gpu_model.hpp"
#include "perf/ladder.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"
#include "perf/scaling.hpp"

namespace swlb::perf {
namespace {

// ----------------------------------------------------------------- cost

TEST(CostModel, PaperBytesPerUpdate) {
  LbmCostModel c;
  // Paper §IV-C3: 380 bytes per lattice update including write allocate.
  EXPECT_DOUBLE_EQ(c.bytesPerLup(), 380.0);
  EXPECT_NEAR(c.bytesPerLupUnfused(), 494.0, 1e-9);
}

TEST(CostModel, RooflineBoundPerCoreGroupIs90MLUPS) {
  LbmCostModel c;
  // Paper §V-A2: 32 GB/s / 380 B = 90.4 MLUPS per core group.
  const double bound = c.lupsUpperBound(32.0 * (1ull << 30));
  EXPECT_NEAR(bound / 1e6, 90.4, 0.5);
  // ... and 14,464 GLUPS over 160,000 core groups.
  EXPECT_NEAR(bound * 160000 / 1e9, 14464, 100);
}

TEST(CostModel, PaperUtilizationNumbersReproduce) {
  LbmCostModel c;
  // 11,245 GLUPS on 160,000 CGs => 77% of the aggregate bandwidth.
  const double perCg = 11245e9 / 160000;
  EXPECT_NEAR(c.bandwidthUtilization(perCg, 32.0 * (1ull << 30)), 0.77, 0.01);
  // New Sunway: 6,583 GLUPS on 60,000 CGs at 51.2 GB/s => 81.4%.
  const double perCgPro = 6583e9 / 60000;
  EXPECT_NEAR(c.bandwidthUtilization(perCgPro, 51.2e9), 0.814, 0.01);
}

TEST(CostModel, FlopsPerLupMatchesReportedPFlops) {
  LbmCostModel c;
  // 11,245 GLUPS -> 4.7 PFlops (TaihuLight), 6,583 GLUPS -> 2.76 PFlops.
  EXPECT_NEAR(c.flops(11245e9) / 1e15, 4.7, 0.05);
  EXPECT_NEAR(c.flops(6583e9) / 1e15, 2.76, 0.03);
}

// ------------------------------------------------------------- roofline

TEST(RooflineTest, LbmIsMemoryBoundOnAllTargets) {
  LbmCostModel c;
  const double ai = c.arithmeticIntensity();  // ~1.1 flops/byte
  EXPECT_NEAR(ai, 1.1, 0.05);

  const auto tl = sw::MachineSpec::sw26010();
  Roofline rTl{tl.cg.peakFlops(), tl.cg.dma.peakBandwidth};
  EXPECT_TRUE(rTl.memoryBound(ai));
  // B/F of SW26010-Pro is 0.022 (paper §III-C) => ridge point ~45.
  const auto pro = sw::MachineSpec::sw26010pro();
  Roofline rPro{pro.cg.peakFlops(), pro.cg.dma.peakBandwidth};
  EXPECT_TRUE(rPro.memoryBound(ai));
  EXPECT_NEAR(pro.cg.dma.peakBandwidth * 6 / (pro.cg.peakFlops() * 6), 0.022,
              0.003);

  // Attainable performance is the bandwidth roof.
  EXPECT_NEAR(rTl.attainable(ai), ai * tl.cg.dma.peakBandwidth, 1);
}

// -------------------------------------------------------------- network

TEST(NetworkModelTest, LocalWithinSupernodeRemoteBeyond) {
  const auto tl = sw::MachineSpec::sw26010();
  NetworkModel net(tl.net, tl.coreGroupsPerProcessor);
  EXPECT_EQ(net.ranksPerSupernode(), 1024);  // 256 procs x 4 CGs
  EXPECT_EQ(net.remoteLinkFraction(512), 0.0);
  EXPECT_GT(net.remoteLinkFraction(160000), 0.0);
  EXPECT_LE(net.remoteLinkFraction(160000), 1.0);
}

TEST(NetworkModelTest, ExchangeTimeScalesWithBytesAndRanks) {
  const auto tl = sw::MachineSpec::sw26010();
  NetworkModel net(tl.net, tl.coreGroupsPerProcessor);
  const double small = net.haloExchangeSeconds(1 << 20, 8, 1024);
  const double big = net.haloExchangeSeconds(16u << 20, 8, 1024);
  EXPECT_GT(big, 10 * small);
  // Crossing supernodes costs more for the same volume.
  const double remote = net.haloExchangeSeconds(16u << 20, 8, 160000);
  EXPECT_GT(remote, big);
  EXPECT_GT(net.syncSeconds(160000), net.syncSeconds(1024));
}

// -------------------------------------------------------------- scaling

class TaihuLightScaling : public ::testing::Test {
 protected:
  ScalingSimulator sim{sw::MachineSpec::sw26010(), LbmCostModel{}};
};

TEST_F(TaihuLightScaling, DmaEfficiencyGrowsWithRowLength) {
  EXPECT_LT(sim.dmaEfficiency(1), 0.3);
  EXPECT_GT(sim.dmaEfficiency(500), 0.85);
  EXPECT_GT(sim.dmaEfficiency(500), sim.dmaEfficiency(32));
}

TEST_F(TaihuLightScaling, Fig13WeakScalingReachesPaperThroughput) {
  // Paper Fig. 13: 500x700x100 per CG, up to 160,000 CGs = 10.4M cores,
  // 5.6T cells, 11,245 GLUPS, 4.7 PFlops, ~94% parallel efficiency.
  const auto pts = sim.weakScaling({500, 700, 100},
                                   {{1, 1}, {10, 10}, {100, 100}, {400, 400}});
  const ScalingPoint& last = pts.back();
  EXPECT_EQ(last.nCg, 160000);
  EXPECT_EQ(last.cores, 10400000);
  EXPECT_NEAR(last.cells, 5.6e12, 1e10);
  EXPECT_NEAR(last.glups, 11245, 0.15 * 11245);
  EXPECT_NEAR(last.pflops, 4.7, 0.15 * 4.7);
  EXPECT_GT(last.efficiency, 0.90);
  EXPECT_NEAR(last.bwUtilization, 0.77, 0.08);
  // Efficiency is non-increasing along the series.
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
}

TEST_F(TaihuLightScaling, Fig14StrongScalingEfficiencyBand) {
  // Paper Fig. 14: 10000x10000x5000 cylinder case, 1.06M -> 10.4M cores,
  // 71.48% parallel efficiency at the largest run.
  const auto pts = sim.strongScaling(
      {10000, 10000, 5000}, {{128, 128}, {181, 181}, {256, 256}, {400, 400}});
  EXPECT_EQ(pts.front().cores, 128 * 128 * 65);
  const ScalingPoint& last = pts.back();
  EXPECT_EQ(last.cores, 10400000);
  EXPECT_GT(last.efficiency, 0.55);
  EXPECT_LT(last.efficiency, 0.88);
  // Throughput still increases with cores (the curve bends but rises).
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].glups, pts[i - 1].glups);
  // ... while efficiency decreases.
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].efficiency, pts[i - 1].efficiency);
}

TEST_F(TaihuLightScaling, OverlapBeatsSequentialHalo) {
  ScalingOptions seq;
  seq.overlapHalo = false;
  ScalingSimulator simSeq(sw::MachineSpec::sw26010(), LbmCostModel{}, seq);
  const auto ovl = sim.weakPoint({500, 700, 100}, 400, 400);
  const auto noOvl = simSeq.weakPoint({500, 700, 100}, 400, 400);
  EXPECT_GT(ovl.glups, noOvl.glups);
}

TEST(NewSunwayScaling, Fig15WeakScalingReachesPaperThroughput) {
  // Paper Fig. 15: 1000x700x100 per CG, 6,000 -> 60,000 CGs (3.9M cores),
  // 4.2T cells, 6,583 GLUPS, 81.4% utilization, 2.76 PFlops.
  ScalingSimulator sim(sw::MachineSpec::sw26010pro(), LbmCostModel{});
  const auto pts = sim.weakScaling({1000, 700, 100},
                                   {{100, 60}, {200, 100}, {300, 200}});
  const ScalingPoint& last = pts.back();
  EXPECT_EQ(last.nCg, 60000);
  EXPECT_EQ(last.cores, 3900000);
  EXPECT_NEAR(last.cells, 4.2e12, 1e10);
  EXPECT_NEAR(last.glups, 6583, 0.15 * 6583);
  EXPECT_NEAR(last.pflops, 2.76, 0.15 * 2.76);
  EXPECT_NEAR(last.bwUtilization, 0.814, 0.08);
}

TEST(NewSunwayScaling, Fig16StrongScalingCylinderCase) {
  // Flow past cylinder, 10000x7000x5000, 390k -> 3.9M cores, 72.2% eff.
  ScalingSimulator sim(sw::MachineSpec::sw26010pro(), LbmCostModel{});
  const auto pts = sim.strongScaling({10000, 7000, 5000},
                                     {{100, 60}, {200, 100}, {300, 200}});
  EXPECT_EQ(pts.front().cores, 390000);
  EXPECT_EQ(pts.back().cores, 3900000);
  EXPECT_GT(pts.back().efficiency, 0.55);
  EXPECT_LT(pts.back().efficiency, 0.90);
}

TEST(ScalingHelpers, SquareGridFactorization) {
  EXPECT_EQ(ScalingSimulator::squareGrid(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(ScalingSimulator::squareGrid(12), (std::pair<int, int>{4, 3}));
  EXPECT_EQ(ScalingSimulator::squareGrid(7), (std::pair<int, int>{7, 1}));
}

TEST(ScalingErrors, StrongScalingRejectsOversubscription) {
  ScalingSimulator sim(sw::MachineSpec::sw26010(), LbmCostModel{});
  EXPECT_THROW(sim.strongScaling({100, 100, 100}, {{128, 128}}), Error);
}

// ---------------------------------------------------------------- ladder

TEST(Fig8Ladder, ReproducesPaperStageGains) {
  const auto stages =
      taihulight_ladder(sw::MachineSpec::sw26010(), LbmCostModel{});
  ASSERT_EQ(stages.size(), 5u);

  // Baseline ~73.6 s per step on the 35M-cell block.
  EXPECT_NEAR(stages[0].stepSeconds, 73.6, 0.15 * 73.6);
  // CPE blocking & sharing: paper says > 75x.
  EXPECT_GT(stages[1].speedup, 70);
  // On-the-fly halo exchange: ~10% improvement.
  EXPECT_GT(stages[2].gainOverPrev, 1.04);
  EXPECT_LT(stages[2].gainOverPrev, 1.20);
  // Kernel fusion: ~30% boost.
  EXPECT_GT(stages[3].gainOverPrev, 1.15);
  EXPECT_LT(stages[3].gainOverPrev, 1.45);
  // Final: 172x overall, 0.426 s per step.
  EXPECT_NEAR(stages[4].speedup, 172, 0.2 * 172);
  EXPECT_NEAR(stages[4].stepSeconds, 0.426, 0.2 * 0.426);
  // Monotone improvement.
  for (std::size_t i = 1; i < stages.size(); ++i)
    EXPECT_LT(stages[i].stepSeconds, stages[i - 1].stepSeconds);
}

// ------------------------------------------------------------------- GPU

TEST(GpuModel, Fig11LadderEndsNear191x) {
  GpuClusterModel gpu;
  const auto stages = gpu.nodeLadder();
  ASSERT_EQ(stages.size(), 5u);
  // Fusion on the CPU: 1.3x traffic reduction.
  EXPECT_NEAR(stages[1].gainOverPrev, 1.3, 0.05);
  // Parallelization is the big jump (paper: ~200x for 1 GPU vs 1 core;
  // node-level vs socket here).
  EXPECT_GT(stages[2].gainOverPrev, 30);
  // Each remaining stage still helps.
  EXPECT_GT(stages[3].gainOverPrev, 1.1);
  EXPECT_GT(stages[4].gainOverPrev, 1.02);
  // Paper: 191x speedup, 83.8% bandwidth utilization.
  EXPECT_NEAR(stages[4].speedup, 191, 0.12 * 191);
  const double cells = 1400.0 * 2800 * 100;
  EXPECT_NEAR(gpu.bandwidthUtilization(cells, stages[4].stepSeconds), 0.838,
              0.05);
}

TEST(GpuModel, Fig17StrongScalingEfficiency) {
  GpuClusterModel gpu;
  const auto pts = gpu.strongScaling();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts.back().gpus, 64);
  // Paper: 86.3% strong-scaling efficiency at 8 nodes.
  EXPECT_NEAR(pts.back().efficiency, 0.863, 0.06);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
    EXPECT_GT(pts[i].glups, pts[i - 1].glups);
  }
}

TEST(GpuModel, Fp32CostHalvesTraffic) {
  EXPECT_DOUBLE_EQ(GpuClusterModel::fp32Cost().bytesPerLup(), 190.0);
}

// ---------------------------------------------------------------- report

TEST(Report, TableFormatsAlignedRows) {
  Table t({"cores", "GLUPS"});
  t.addRow({"65", Table::num(0.07, 2)});
  t.addRow({"10400000", Table::num(11245.0, 0)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("11245"), std::string::npos);
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(Report, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.77), "77.0%");
  EXPECT_EQ(Table::eng(11245e9, "LUPS", 1), "11.2 TLUPS");
  EXPECT_EQ(Table::eng(90.4e6, "LUPS", 1), "90.4 MLUPS");
  // Edge cases: negatives keep their sign, sub-kilo values no prefix.
  EXPECT_EQ(Table::eng(-2.5e6, "B", 1), "-2.5 MB");
  EXPECT_EQ(Table::eng(512.0, "B", 0), "512 B");
  EXPECT_EQ(Table::num(-0.005, 2), "-0.01");
}

}  // namespace
}  // namespace swlb::perf
